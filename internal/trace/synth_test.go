package trace

import (
	"bytes"
	"math"
	"testing"

	"gridstrat/internal/stats"
)

func TestBodyDistributionHitsMoments(t *testing.T) {
	for _, spec := range PaperDatasets {
		d, err := BodyDistribution(spec.MeanBody, spec.StdBody, DefaultTimeout)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if math.Abs(d.Mean()-spec.MeanBody)/spec.MeanBody > 0.02 {
			t.Errorf("%s: calibrated mean %v, want %v", spec.Name, d.Mean(), spec.MeanBody)
		}
		if math.Abs(stats.Std(d)-spec.StdBody)/spec.StdBody > 0.02 {
			t.Errorf("%s: calibrated std %v, want %v", spec.Name, stats.Std(d), spec.StdBody)
		}
		// All mass within [floor, timeout].
		if d.Quantile(0) < LatencyFloor || d.Quantile(1) > DefaultTimeout {
			t.Errorf("%s: support [%v, %v] escapes bounds", spec.Name, d.Quantile(0), d.Quantile(1))
		}
	}
}

func TestBodyDistributionErrors(t *testing.T) {
	if _, err := BodyDistribution(100, 50, DefaultTimeout); err == nil {
		t.Fatal("mean below floor should fail")
	}
	if _, err := BodyDistribution(500, 0, DefaultTimeout); err == nil {
		t.Fatal("zero std should fail")
	}
	if _, err := BodyDistribution(500, 100, 400); err == nil {
		t.Fatal("timeout below mean should fail")
	}
}

func TestSynthesizeMatchesSpec(t *testing.T) {
	for _, spec := range PaperDatasets {
		tr, err := Synthesize(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if tr.Len() != spec.Probes {
			t.Fatalf("%s: %d probes, want %d", spec.Name, tr.Len(), spec.Probes)
		}
		cal := CheckCalibration(tr, spec)
		if cal.MeanBody > 0.03 {
			t.Errorf("%s: sample mean off by %.1f%%", spec.Name, cal.MeanBody*100)
		}
		// The heavy upper tail puts most of the variance in the top
		// few strata, so the sample std keeps noticeable noise even
		// under stratified sampling.
		if cal.StdBody > 0.12 {
			t.Errorf("%s: sample std off by %.1f%%", spec.Name, cal.StdBody*100)
		}
		if cal.Rho > 0.25 {
			t.Errorf("%s: sample rho off by %.1f%% (binomial noise should stay below this)",
				spec.Name, cal.Rho*100)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := PaperDatasets[0]
	a, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestSynthesizeInvalidSpecs(t *testing.T) {
	if _, err := Synthesize(DatasetSpec{Name: "zero", Probes: 0}); err == nil {
		t.Fatal("zero probes should fail")
	}
	bad := DatasetSpec{Name: "bad-rho", MeanBody: 500, StdBody: 400,
		MeanCensored: 400, Probes: 10, Seed: 1} // censored < body → negative rho
	if _, err := Synthesize(bad); err == nil {
		t.Fatal("negative rho should fail")
	}
}

func TestSynthesizeAllIncludesAggregate(t *testing.T) {
	set, err := SynthesizeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) != len(PaperDatasets)+1 {
		t.Fatalf("got %d traces", len(set.Traces))
	}
	agg, err := set.Get(AggregateName)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, spec := range PaperDatasets {
		if spec.Name != "2006-IX" {
			total += spec.Probes
		}
	}
	if agg.Len() != total {
		t.Fatalf("aggregate has %d records, want %d", agg.Len(), total)
	}
	// The paper's total probe count.
	grand := 0
	for _, spec := range PaperDatasets {
		grand += spec.Probes
	}
	if grand != 10893 {
		t.Fatalf("total probes %d, want 10893", grand)
	}
	if _, err := set.Get("no-such"); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if len(set.Order) != len(PaperDatasets)+1 {
		t.Fatalf("order has %d entries", len(set.Order))
	}
}

func TestRhoBackout(t *testing.T) {
	// ρ = (mean_with − mean_less)/(timeout − mean_less); check 2006-IX
	// against the hand-computed value ≈ 0.050.
	spec, err := LookupDataset("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.Rho()-0.05) > 0.003 {
		t.Fatalf("2006-IX rho = %v, want ≈0.050", spec.Rho())
	}
	// The heaviest week 2007-37 is about a third outliers.
	spec, _ = LookupDataset("2007-37")
	if spec.Rho() < 0.30 || spec.Rho() > 0.36 {
		t.Fatalf("2007-37 rho = %v, want ≈0.33", spec.Rho())
	}
	if _, err := LookupDataset("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestStreamSubmissionInvariant(t *testing.T) {
	spec := PaperDatasets[0]
	tr, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	// At the submit instant of probe k, at most probeSlots probes are
	// in flight (constant-load monitoring). Verify by replaying.
	type iv struct{ start, end float64 }
	var ivs []iv
	for _, r := range tr.Records {
		occ := r.Latency
		if r.Status == StatusOutlier {
			occ = tr.Timeout
		}
		ivs = append(ivs, iv{r.Submit, r.Submit + occ})
	}
	for i, a := range ivs {
		inflight := 0
		for j, b := range ivs {
			if j != i && b.start <= a.start && a.start < b.end {
				inflight++
			}
		}
		if inflight > probeSlots {
			t.Fatalf("probe %d overlaps %d others, cap %d", i, inflight, probeSlots)
		}
	}
	// Submissions are in non-decreasing ID order of time.
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Submit < tr.Records[i-1].Submit-1e-9 {
			t.Fatalf("submit times not monotone at %d", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Timeout != tr.Timeout || got.Len() != tr.Len() {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if a.ID != b.ID || a.Status != b.Status ||
			math.Abs(a.Submit-b.Submit) > 1e-3 || math.Abs(a.Latency-b.Latency) > 1e-3 {
			t.Fatalf("record %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("not,a,trace,x\n")); err == nil {
		t.Fatal("bad preamble should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("#name,t,NaNx,\nid,submit_s,latency_s,status\n")); err == nil {
		t.Fatal("bad timeout should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("#name,t,100,\nwrong,header,here,now\n")); err == nil {
		t.Fatal("bad header should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString(
		"#name,t,100,\nid,submit_s,latency_s,status\nx,0,1,completed\n")); err == nil {
		t.Fatal("bad id should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString(
		"#name,t,100,\nid,submit_s,latency_s,status\n0,0,1,weird\n")); err == nil {
		t.Fatal("bad status should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Len() != tr.Len() {
		t.Fatalf("mismatch: %+v", got)
	}
	for i := range tr.Records {
		if tr.Records[i] != got.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if _, err := ReadJSON(bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("bad JSON should fail")
	}
	if _, err := ReadJSON(bytes.NewBufferString(
		`{"name":"x","timeout_s":10,"records":[{"id":0,"submit_s":0,"latency_s":1,"status":"zzz"}]}`)); err == nil {
		t.Fatal("bad status should fail")
	}
}

func TestWeeklyNames(t *testing.T) {
	names := WeeklyNames()
	if len(names) != 11 {
		t.Fatalf("got %d weekly names", len(names))
	}
	for _, n := range names {
		if n == "2006-IX" {
			t.Fatal("2006-IX is not weekly")
		}
	}
}
