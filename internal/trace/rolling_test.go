package trace

import (
	"math/rand"
	"testing"

	"gridstrat/internal/stats"
)

func rollingSeedTrace(n int, spacing float64) *Trace {
	tr := &Trace{Name: "roll", Timeout: DefaultTimeout}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, ProbeRecord{
			ID: i, Submit: float64(i) * spacing, Latency: 50 + float64(i%13), Status: StatusCompleted,
		})
	}
	return tr
}

func TestRollingBasics(t *testing.T) {
	tr := rollingSeedTrace(10, 10) // submits 0..90
	r, err := NewRolling(tr, 45)
	if err != nil {
		t.Fatal(err)
	}
	// Window [45, 90]: submits 50..90 survive.
	if r.Len() != 5 || r.MinSubmit() != 50 || r.MaxSubmit() != 90 {
		t.Fatalf("window = %d records [%v, %v], want 5 [50, 90]", r.Len(), r.MinSubmit(), r.MaxSubmit())
	}
	// Snapshot is an independent copy.
	snap := r.Snapshot()
	r.Append([]ProbeRecord{{ID: 100, Submit: 100, Latency: 1, Status: StatusCompleted}})
	if len(snap.Records) != 5 {
		t.Fatalf("snapshot mutated by Append: %d records", len(snap.Records))
	}
	if r.MaxSubmit() != 100 {
		t.Fatalf("cursor %v after append, want 100", r.MaxSubmit())
	}
	// Trim evicts exactly the records below the cutoff (100-45 = 55).
	ev := r.Trim()
	if len(ev) != 1 || ev[0].Submit != 50 {
		t.Fatalf("evicted %+v, want the submit-50 record", ev)
	}
	// Unsorted constructor input is sorted once.
	shuffled := &Trace{Name: "s", Timeout: DefaultTimeout}
	for _, i := range []int{3, 0, 2, 1} {
		shuffled.Records = append(shuffled.Records, ProbeRecord{ID: i, Submit: float64(i), Latency: 1, Status: StatusCompleted})
	}
	rs, err := NewRolling(shuffled, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range rs.Records() {
		if rec.Submit != float64(i) {
			t.Fatalf("constructor did not sort: %+v", rs.Records())
		}
	}
	// Out-of-order batches are merged, existing records winning ties.
	rs.Append([]ProbeRecord{{ID: 10, Submit: 1.5, Latency: 2, Status: StatusCompleted}})
	subs := []float64{0, 1, 1.5, 2, 3}
	for i, rec := range rs.Records() {
		if rec.Submit != subs[i] {
			t.Fatalf("merge order wrong: %+v", rs.Records())
		}
	}
	// Rebase shifts every submit and therefore the cursor.
	rs.Rebase(1)
	if rs.MinSubmit() != -1 || rs.MaxSubmit() != 2 {
		t.Fatalf("rebase wrong: [%v, %v]", rs.MinSubmit(), rs.MaxSubmit())
	}
}

// TestRollingMatchesLastWindow pins Trim against the read path's
// LastWindow on random traces: same cutoff, same survivors.
func TestRollingMatchesLastWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tr := &Trace{Name: "w", Timeout: DefaultTimeout}
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			tr.Records = append(tr.Records, ProbeRecord{
				ID: i, Submit: float64(rng.Intn(500)), Latency: rng.Float64() * 100, Status: StatusCompleted,
			})
		}
		width := 1 + float64(rng.Intn(400))
		want, err := LastWindow(tr, width)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRolling(tr, width)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != len(want.Records) {
			t.Fatalf("trial %d: Rolling kept %d records, LastWindow %d", trial, r.Len(), len(want.Records))
		}
		// Same multiset of IDs (orders differ: LastWindow preserves
		// insertion order, Rolling submit order).
		ids := map[int]bool{}
		for _, rec := range want.Records {
			ids[rec.ID] = true
		}
		for _, rec := range r.Records() {
			if !ids[rec.ID] {
				t.Fatalf("trial %d: record %d kept by Rolling but not LastWindow", trial, rec.ID)
			}
		}
	}
}

// TestRollingMergeECDFMatchesFlat is the write-path ground-truth
// property test: streaming random batches (random spacings, random
// window widths, evictions on and off) through Rolling +
// MergeSortedEvict produces, at every epoch, an ECDF byte-identical
// to NewECDF over the equivalent flat windowed sample.
func TestRollingMergeECDFMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		spacing := 1 + float64(rng.Intn(5))
		// Narrow widths force evictions; wide ones exercise pure growth.
		width := []float64{30, 200, 1e9}[rng.Intn(3)]
		tr := rollingSeedTrace(20+rng.Intn(30), spacing)
		r, err := NewRolling(tr, width)
		if err != nil {
			t.Fatal(err)
		}
		ecdf, err := r.Snapshot().ECDF()
		if err != nil {
			t.Fatal(err)
		}
		id := 1000
		for step := 0; step < 25; step++ {
			k := 1 + rng.Intn(12)
			batch := make([]ProbeRecord, k)
			cursor := r.MaxSubmit()
			for i := range batch {
				cursor += spacing
				st := StatusCompleted
				if rng.Intn(6) == 0 {
					st = StatusOutlier
				}
				lat := float64(rng.Intn(40)) * 2.5
				if st == StatusOutlier {
					lat = DefaultTimeout
				}
				batch[i] = ProbeRecord{ID: id, Submit: cursor, Latency: lat, Status: st}
				id++
			}
			r.Append(batch)
			evicted := r.Trim()

			add := completedSorted(batch)
			drop := completedSorted(evicted)
			next, err := ecdf.MergeSortedEvict(add, drop)
			if err != nil {
				// A window left without completed probes cannot happen
				// here: every batch keeps its own completed records.
				t.Fatalf("trial %d step %d: merge: %v", trial, step, err)
			}
			flat, err := r.Snapshot().ECDF()
			if err != nil {
				t.Fatalf("trial %d step %d: flat: %v", trial, step, err)
			}
			if !ecdfIdentical(next, flat) {
				t.Fatalf("trial %d step %d: merged ECDF diverged from flat NewECDF", trial, step)
			}
			ecdf = next
		}
	}
}

func completedSorted(recs []ProbeRecord) []float64 {
	var out []float64
	for _, r := range recs {
		if r.Status == StatusCompleted {
			out = append(out, r.Latency)
		}
	}
	// Insertion sort is fine for test-sized batches.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func ecdfIdentical(a, b *stats.ECDF) bool {
	as, bs := a.Support(), b.Support()
	if a.N() != b.N() || len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] || a.Eval(as[i]) != b.Eval(bs[i]) {
			return false
		}
	}
	return true
}

// TestStatsFromECDFMatchesComputeStats pins the O(support) stats
// derivation against the historical ComputeStats on random windows.
func TestStatsFromECDFMatchesComputeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		tr := &Trace{Name: "st", Timeout: DefaultTimeout}
		n := 2 + rng.Intn(200)
		for i := 0; i < n; i++ {
			st := StatusCompleted
			lat := rng.Float64() * 900
			switch rng.Intn(10) {
			case 0:
				st, lat = StatusOutlier, DefaultTimeout
			case 1:
				st, lat = StatusFault, DefaultTimeout
			}
			tr.Records = append(tr.Records, ProbeRecord{ID: i, Submit: float64(i), Latency: lat, Status: st})
		}
		want := tr.ComputeStats()
		if want.Completed == 0 {
			continue
		}
		e, err := tr.ECDF()
		if err != nil {
			t.Fatal(err)
		}
		got := StatsFromECDF(tr.Name, e, len(tr.Records), want.Outliers, tr.Timeout)
		if got.Probes != want.Probes || got.Completed != want.Completed || got.Outliers != want.Outliers {
			t.Fatalf("counts diverged: %+v vs %+v", got, want)
		}
		if got.Rho != want.Rho {
			t.Fatalf("rho diverged: %v vs %v", got.Rho, want.Rho)
		}
		if got.Median != want.Median {
			t.Fatalf("median diverged: %v vs %v", got.Median, want.Median)
		}
		for _, pair := range [][2]float64{
			{got.MeanBody, want.MeanBody},
			{got.StdBody, want.StdBody},
			{got.MeanCensored, want.MeanCensored},
		} {
			if !relCloseTo(pair[0], pair[1], 1e-9) {
				t.Fatalf("moment diverged beyond summation-order tolerance: %+v vs %+v", got, want)
			}
		}
	}
}

func relCloseTo(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if x := a; x < 0 {
		x = -x
		if x > m {
			m = x
		}
	} else if a > m {
		m = a
	}
	return d <= tol*m
}
