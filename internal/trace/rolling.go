package trace

import (
	"fmt"
	"math"
	"sort"

	"gridstrat/internal/stats"
)

// Rolling is the mutable rolling-window buffer behind continuous trace
// ingestion: probe records kept in ascending submit order, so a batch
// append costs O(k log k) for the batch sort plus a merge, a window
// trim costs O(evicted), and the max-submit cursor is the last element
// — no per-batch copy of the whole window, no re-sort, no full scan
// for the cursor (the costs the pre-incremental Entry.Observe paid on
// every batch).
//
// Rolling is not safe for concurrent use; callers serialize mutations
// (the server's ingest path holds its per-entry rebuild lock).
// Snapshot materializes an immutable Trace for readers.
type Rolling struct {
	name    string
	timeout float64
	width   float64
	recs    []ProbeRecord // ascending Submit; ties keep insertion order
}

// NewRolling builds a rolling buffer from a trace, sorting once and
// trimming to the trailing window. The input trace is not modified.
func NewRolling(t *Trace, width float64) (*Rolling, error) {
	if width <= 0 || math.IsNaN(width) {
		return nil, fmt.Errorf("trace: non-positive window %v", width)
	}
	if len(t.Records) == 0 {
		return nil, ErrNoCompleted
	}
	r := &Rolling{
		name:    t.Name,
		timeout: t.Timeout,
		width:   width,
		recs:    append([]ProbeRecord(nil), t.Records...),
	}
	if !submitOrdered(r.recs) {
		sort.SliceStable(r.recs, func(i, j int) bool { return r.recs[i].Submit < r.recs[j].Submit })
	}
	r.Trim()
	return r, nil
}

// submitOrdered reports whether recs are already ascending by submit
// time.
func submitOrdered(recs []ProbeRecord) bool {
	for i := 1; i < len(recs); i++ {
		if recs[i].Submit < recs[i-1].Submit {
			return false
		}
	}
	return true
}

// Len returns the number of records in the window.
func (r *Rolling) Len() int { return len(r.recs) }

// Width returns the rolling-window width in seconds.
func (r *Rolling) Width() float64 { return r.width }

// Timeout returns the trace censoring bound.
func (r *Rolling) Timeout() float64 { return r.timeout }

// Name returns the trace name.
func (r *Rolling) Name() string { return r.name }

// MaxSubmit returns the newest record's submit time — the cached
// cursor the ingest path stamps default submit times from. The buffer
// is never empty (NewRolling requires records and Trim always keeps
// the newest record), so this is O(1) on the sorted tail.
func (r *Rolling) MaxSubmit() float64 { return r.recs[len(r.recs)-1].Submit }

// MinSubmit returns the oldest record's submit time.
func (r *Rolling) MinSubmit() float64 { return r.recs[0].Submit }

// Records returns the buffer's records in ascending submit order. The
// slice is owned by the buffer: read-only, valid until the next
// mutation.
func (r *Rolling) Records() []ProbeRecord { return r.recs }

// Append merges a batch into the buffer, keeping ascending submit
// order. The common case — every new submit at or past the current
// maximum, as default-stamped ingestion batches are — is a plain
// append; out-of-order batches (explicit start times in the past) are
// stably merged, with existing records winning ties so the result
// matches the historical append-then-window record order.
func (r *Rolling) Append(recs []ProbeRecord) {
	if len(recs) == 0 {
		return
	}
	batch := recs
	if !submitOrdered(batch) {
		batch = append([]ProbeRecord(nil), recs...)
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Submit < batch[j].Submit })
	}
	if len(r.recs) == 0 || batch[0].Submit >= r.recs[len(r.recs)-1].Submit {
		r.recs = append(r.recs, batch...)
		return
	}
	merged := make([]ProbeRecord, 0, len(r.recs)+len(batch))
	i, j := 0, 0
	for i < len(r.recs) && j < len(batch) {
		if r.recs[i].Submit <= batch[j].Submit {
			merged = append(merged, r.recs[i])
			i++
		} else {
			merged = append(merged, batch[j])
			j++
		}
	}
	merged = append(merged, r.recs[i:]...)
	merged = append(merged, batch[j:]...)
	r.recs = merged
}

// Trim evicts every record older than the trailing window — Submit <
// MaxSubmit() - width, the same cutoff as LastWindow — and returns the
// evicted records (a copy, in ascending submit order). The cost is
// O(evicted): the survivors are re-sliced, not copied, and append
// reuses or reallocates the tail as usual, so the front of the old
// array is reclaimed on the next growth.
func (r *Rolling) Trim() []ProbeRecord {
	if len(r.recs) == 0 {
		return nil
	}
	cutoff := r.MaxSubmit() - r.width
	i := 0
	for i < len(r.recs) && r.recs[i].Submit < cutoff {
		i++
	}
	if i == 0 {
		return nil
	}
	evicted := append([]ProbeRecord(nil), r.recs[:i]...)
	r.recs = r.recs[i:]
	return evicted
}

// Rebase shifts every submit time down by offset. Window membership
// depends only on relative submit times, so a re-base changes no
// trimming decision; the ingest path uses it to pull the submit cursor
// back from the float64-precision ceiling.
func (r *Rolling) Rebase(offset float64) {
	if offset == 0 {
		return
	}
	for i := range r.recs {
		r.recs[i].Submit -= offset
	}
}

// Snapshot materializes the current window as an immutable Trace (the
// records are copied, in ascending submit order).
func (r *Rolling) Snapshot() *Trace {
	return &Trace{
		Name:    r.name,
		Timeout: r.timeout,
		Records: append([]ProbeRecord(nil), r.recs...),
	}
}

// StatsFromECDF derives the Table-1-style window summary from a
// counted ECDF of the window's completed-probe latencies plus the
// window's record counts — O(support) instead of ComputeStats's
// O(n log n) sort per rebuild. probes counts every record in the
// window and outliers the outlier+fault records; e may be nil when the
// window holds no completed probes.
//
// Values agree with ComputeStats on the equivalent trace up to
// floating-point summation order (≈1e-12 relative): the mean and
// standard deviation are accumulated over the weighted support rather
// than the flat sample, and the median resolves the same type-7 order
// statistics from the counts.
func StatsFromECDF(name string, e *stats.ECDF, probes, outliers int, timeout float64) Stats {
	s := Stats{Name: name, Probes: probes, Outliers: outliers}
	if e != nil {
		s.Completed = e.N()
	}
	if terminal := s.Completed + outliers; terminal > 0 {
		s.Rho = float64(outliers) / float64(terminal)
	}
	if e != nil {
		s.MeanBody = e.Mean()
		s.StdBody = e.Std()
		s.Median = e.SampleQuantile(0.5)
	}
	if terminal := s.Completed + outliers; terminal > 0 {
		s.MeanCensored = (s.MeanBody*float64(s.Completed) + timeout*float64(outliers)) / float64(terminal)
	}
	return s
}
