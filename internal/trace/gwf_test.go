package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestGWFRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteGWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Timeout != tr.Timeout {
		t.Fatalf("header: %q %v", got.Name, got.Timeout)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("%d records, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if a.ID != b.ID || a.Status != b.Status || a.Latency != b.Latency {
			t.Fatalf("record %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGWFRoundTripSynthetic(t *testing.T) {
	spec, err := LookupDataset("2007-52")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.ComputeStats(), got.ComputeStats()
	if a.Completed != b.Completed || a.Outliers != b.Outliers {
		t.Fatalf("stats drifted: %+v vs %+v", a, b)
	}
}

func TestGWFHandwritten(t *testing.T) {
	in := `# a comment
# Trace: byhand
# Timeout: 5000
# JobID SubmitTime WaitTime RunTime Status
0 0.0 120.5 1 1
1 10.0 -1 -1 -1

2 20.0 300 1 0
3 30.0 50 1 5
`
	tr, err := ReadGWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "byhand" || tr.Timeout != 5000 {
		t.Fatalf("header %q %v", tr.Name, tr.Timeout)
	}
	if tr.Len() != 4 {
		t.Fatalf("%d records", tr.Len())
	}
	// Missing wait (-1) becomes a censored outlier at the timeout.
	if tr.Records[1].Status != StatusOutlier || tr.Records[1].Latency != 5000 {
		t.Fatalf("missing-wait record: %+v", tr.Records[1])
	}
	if tr.Records[2].Status != StatusFault {
		t.Fatalf("status 0 should be fault: %+v", tr.Records[2])
	}
	if tr.Records[3].Status != StatusCancelled {
		t.Fatalf("status 5 should be cancelled: %+v", tr.Records[3])
	}
}

func TestGWFErrors(t *testing.T) {
	cases := []string{
		"0 0 1\n",                     // too few columns
		"x 0 1 1 1\n",                 // bad id
		"0 y 1 1 1\n",                 // bad submit
		"0 0 z 1 1\n",                 // bad wait
		"0 0 1 1 q\n",                 // bad status
		"0 0 1 1 7\n",                 // unknown status code
		"# Timeout: zzz\n0 0 1 1 1\n", // bad timeout header
	}
	for _, in := range cases {
		if _, err := ReadGWF(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}
