// Package debuglisten exposes net/http/pprof on a dedicated debug
// listener, separate from the serving port: profiling endpoints never
// share the production mux (they bypass admission control and leak
// operational detail), and an empty address keeps them entirely off —
// the default for both daemons' -pprof flag.
package debuglisten

import (
	"log"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve starts the pprof handler on addr in a background goroutine
// and returns immediately. An empty addr is a no-op. Listener errors
// are logged, not fatal: a daemon must not die because its debug port
// is taken.
func Serve(addr string, logger *log.Logger) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if logger != nil {
		logger.Printf("pprof debug listener on %s", addr)
	}
	go func() {
		if err := hs.ListenAndServe(); err != nil && logger != nil {
			logger.Printf("pprof: %v", err)
		}
	}()
}
