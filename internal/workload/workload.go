// Package workload models grid applications on top of the submission
// strategies: bags of independent tasks dispatched in waves whose
// wall-clock time is latency-dominated. The paper's conclusion points
// at exactly this extension — "the impact of each strategy on
// grid-applications makespan".
//
// Per-wave completion is an order statistic: a wave of n tasks ends
// when its slowest task has started and run, so E[wave] =
// E[max(J₁…J_n)] + runtime with the J_k i.i.d. under the chosen
// strategy. The strategy CDFs come in closed form from the core
// package, making the makespan model analytic end to end.
package workload

import (
	"fmt"
	"math"

	"gridstrat/internal/core"
)

// Strategy wraps one submission strategy's total-latency law.
type Strategy struct {
	Name string
	CDF  func(t float64) float64
	EJ   float64 // per-task expectation
	Load float64 // parallel copies per task (b, N‖, or 1)
	Hint float64 // integration scale hint (≈ optimal timeout)
}

// SingleStrategy builds the optimized single-resubmission law.
func SingleStrategy(m core.Model) Strategy {
	tInf, ev := core.OptimizeSingle(m)
	return Strategy{
		Name: "single",
		CDF:  core.SingleCDF(m, tInf),
		EJ:   ev.EJ,
		Load: 1,
		Hint: tInf,
	}
}

// MultipleStrategy builds the optimized b-fold submission law.
func MultipleStrategy(m core.Model, b int) Strategy {
	tInf, ev := core.OptimizeMultiple(m, b)
	return Strategy{
		Name: fmt.Sprintf("multiple(b=%d)", b),
		CDF:  core.MultipleCDF(m, b, tInf),
		EJ:   ev.EJ,
		Load: float64(b),
		Hint: tInf,
	}
}

// DelayedStrategy builds the EJ-optimal delayed-resubmission law.
func DelayedStrategy(m core.Model) Strategy {
	p, ev := core.OptimizeDelayed(m)
	return Strategy{
		Name: fmt.Sprintf("delayed(t0=%.0f,t∞=%.0f)", p.T0, p.TInf),
		CDF:  core.DelayedCDF(m, p),
		EJ:   ev.EJ,
		Load: ev.Parallel,
		Hint: p.T0,
	}
}

// Application is a bag of independent tasks executed in fixed-width
// waves.
type Application struct {
	Tasks     int     // total independent tasks
	WaveWidth int     // tasks dispatched concurrently
	Runtime   float64 // execution time per task (s)
}

// Validate checks the application shape.
func (a Application) Validate() error {
	if a.Tasks <= 0 || a.WaveWidth <= 0 {
		return fmt.Errorf("workload: tasks and wave width must be positive, got %+v", a)
	}
	if a.Runtime < 0 || math.IsNaN(a.Runtime) {
		return fmt.Errorf("workload: invalid runtime %v", a.Runtime)
	}
	return nil
}

// Waves returns the number of dispatch waves.
func (a Application) Waves() int {
	return (a.Tasks + a.WaveWidth - 1) / a.WaveWidth
}

// MakespanEstimate is the analytic makespan of an application under a
// strategy.
type MakespanEstimate struct {
	Strategy     string
	Makespan     float64 // expected wall-clock (s)
	PerWave      float64 // expected duration of a full wave
	GridLoad     float64 // peak concurrent copies (wave width × per-task load)
	TotalTaskSec float64 // lower bound on consumed task-seconds
}

// EstimateMakespan computes the expected makespan: waves are
// sequential, each ending at its slowest task.
//
// The last wave may be narrower; it is modeled with its actual width.
func EstimateMakespan(a Application, s Strategy) (MakespanEstimate, error) {
	if err := a.Validate(); err != nil {
		return MakespanEstimate{}, err
	}
	if s.CDF == nil {
		return MakespanEstimate{}, fmt.Errorf("workload: strategy %q has no CDF", s.Name)
	}
	fullWaves := a.Tasks / a.WaveWidth
	rem := a.Tasks % a.WaveWidth

	perWave := core.ExpectedMax(s.CDF, a.WaveWidth, s.Hint) + a.Runtime
	total := float64(fullWaves) * perWave
	if rem > 0 {
		total += core.ExpectedMax(s.CDF, rem, s.Hint) + a.Runtime
	}
	return MakespanEstimate{
		Strategy:     s.Name,
		Makespan:     total,
		PerWave:      perWave,
		GridLoad:     float64(a.WaveWidth) * s.Load,
		TotalTaskSec: float64(a.Tasks) * (s.EJ*s.Load + a.Runtime),
	}, nil
}

// Compare evaluates several strategies on the same application,
// returning estimates in input order.
func Compare(a Application, strategies ...Strategy) ([]MakespanEstimate, error) {
	out := make([]MakespanEstimate, 0, len(strategies))
	for _, s := range strategies {
		est, err := EstimateMakespan(a, s)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

// SmallestMeetingDeadline returns the smallest collection size b whose
// analytic makespan meets the deadline, or 0 if none of 1..maxB does.
func SmallestMeetingDeadline(m core.Model, a Application, deadline float64, maxB int) (int, MakespanEstimate, error) {
	if err := a.Validate(); err != nil {
		return 0, MakespanEstimate{}, err
	}
	if deadline <= 0 || maxB < 1 {
		return 0, MakespanEstimate{}, fmt.Errorf("workload: invalid deadline %v or maxB %d", deadline, maxB)
	}
	for b := 1; b <= maxB; b++ {
		est, err := EstimateMakespan(a, MultipleStrategy(m, b))
		if err != nil {
			return 0, MakespanEstimate{}, err
		}
		if est.Makespan <= deadline {
			return b, est, nil
		}
	}
	return 0, MakespanEstimate{}, nil
}
