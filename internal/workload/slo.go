package workload

import (
	"fmt"
	"math"
	"sort"

	"gridstrat/internal/core"
)

// Class is a planning-side SLO class, mirroring the admission tiers
// the serving layer enforces (internal/server: critical | standard |
// sheddable). The serving side decides who gets in when the daemon
// saturates; this side decides what each admitted class should be
// promised — its deadline, its success target, and how much parallel
// grid capacity it may burn to meet them.
type Class uint8

const (
	// ClassCritical work gets the tightest deadline and the largest
	// copy budget; it is planned first under contended capacity.
	ClassCritical Class = iota
	// ClassStandard is the default tier.
	ClassStandard
	// ClassSheddable is background work: a loose deadline, no
	// redundancy budget, and it only gets capacity the higher classes
	// left over.
	ClassSheddable
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassCritical:
		return "critical"
	case ClassSheddable:
		return "sheddable"
	default:
		return "standard"
	}
}

// ParseClass maps a class name to its value.
func ParseClass(s string) (Class, error) {
	switch s {
	case "critical":
		return ClassCritical, nil
	case "standard":
		return ClassStandard, nil
	case "sheddable":
		return ClassSheddable, nil
	}
	return 0, fmt.Errorf("workload: unknown SLO class %q", s)
}

// Classes returns the three classes in priority order (critical
// first).
func Classes() []Class { return []Class{ClassCritical, ClassStandard, ClassSheddable} }

// ClassPolicy is one class's planning SLO.
type ClassPolicy struct {
	Class Class
	// Deadline is the class SLO deadline in seconds: per-task total
	// latency for RecommendForClass, application makespan for the
	// contended capacity planner.
	Deadline float64
	// Target is the required probability of meeting the deadline,
	// in (0, 1).
	Target float64
	// MaxParallel bounds the average parallel copies per task the
	// class may keep in flight (>= 1).
	MaxParallel float64
	// Budget is the Δcost ceiling relative to the single optimum
	// (Eq. 6); 0 means uncapped.
	Budget float64
}

// Validate checks the policy.
func (p ClassPolicy) Validate() error {
	if p.Class >= numClasses {
		return fmt.Errorf("workload: unknown class %d", int(p.Class))
	}
	if !(p.Deadline > 0) || math.IsInf(p.Deadline, 1) {
		return fmt.Errorf("workload: class %s deadline %v must be positive and finite", p.Class, p.Deadline)
	}
	if !(p.Target > 0 && p.Target < 1) {
		return fmt.Errorf("workload: class %s target %v outside (0, 1)", p.Class, p.Target)
	}
	if p.MaxParallel < 1 || math.IsNaN(p.MaxParallel) {
		return fmt.Errorf("workload: class %s parallel budget %v must be >= 1", p.Class, p.MaxParallel)
	}
	if p.Budget < 0 || math.IsNaN(p.Budget) {
		return fmt.Errorf("workload: class %s cost budget %v must be >= 0", p.Class, p.Budget)
	}
	return nil
}

// DefaultPolicies derives the three class policies from a base
// deadline (the latency the critical class must meet): critical pays
// for redundancy to hit the base deadline with high confidence,
// standard gets twice the time at bounded cost, and sheddable gets
// four times the time with essentially no extra cost allowed.
func DefaultPolicies(deadline float64) []ClassPolicy {
	return []ClassPolicy{
		{Class: ClassCritical, Deadline: deadline, Target: 0.9, MaxParallel: 5, Budget: 0},
		{Class: ClassStandard, Deadline: 2 * deadline, Target: 0.85, MaxParallel: 2, Budget: 3},
		{Class: ClassSheddable, Deadline: 4 * deadline, Target: 0.75, MaxParallel: 1, Budget: 1.05},
	}
}

// ClassDemand is one class's application demand under contended
// capacity.
type ClassDemand struct {
	Policy ClassPolicy
	App    Application
}

// ClassAllocation is the contended planner's verdict for one class.
type ClassAllocation struct {
	Class Class
	// B is the chosen collection size; 0 when the class is infeasible
	// under its deadline within the capacity it was offered.
	B        int
	Est      MakespanEstimate
	Feasible bool
	// GridLoad is the peak concurrent copies the allocation consumes
	// (0 when infeasible — an infeasible class is refused, mirroring
	// admission shedding, rather than silently over-committing).
	GridLoad float64
}

// SmallestMeetingDeadlineContended is the class-aware version of
// SmallestMeetingDeadline: demands are planned in priority order
// (critical first) against a shared parallel-copy capacity. Each class
// gets the smallest collection size whose analytic makespan meets its
// policy deadline, with its affordable b capped by the capacity the
// higher classes left; a class that cannot meet its deadline within
// its remaining capacity (or its policy's MaxParallel) is reported
// infeasible and consumes nothing. Returns the allocations in priority
// order and the capacity left over.
func SmallestMeetingDeadlineContended(m core.Model, demands []ClassDemand, capacity float64, maxB int) ([]ClassAllocation, float64, error) {
	if capacity <= 0 || math.IsNaN(capacity) {
		return nil, 0, fmt.Errorf("workload: non-positive capacity %v", capacity)
	}
	if maxB < 1 {
		return nil, 0, fmt.Errorf("workload: maxB must be >= 1, got %d", maxB)
	}
	for _, d := range demands {
		if err := d.Policy.Validate(); err != nil {
			return nil, 0, err
		}
		if err := d.App.Validate(); err != nil {
			return nil, 0, err
		}
	}
	ordered := append([]ClassDemand(nil), demands...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Policy.Class < ordered[j].Policy.Class })

	out := make([]ClassAllocation, 0, len(ordered))
	remaining := capacity
	for _, d := range ordered {
		alloc := ClassAllocation{Class: d.Policy.Class}
		// The class's copy ceiling: its own policy, the global maxB,
		// and what fits in the remaining capacity at its wave width.
		bCap := maxB
		if pb := int(math.Floor(d.Policy.MaxParallel)); pb < bCap {
			bCap = pb
		}
		if cb := int(math.Floor(remaining / float64(d.App.WaveWidth))); cb < bCap {
			bCap = cb
		}
		if bCap >= 1 {
			b, est, err := SmallestMeetingDeadline(m, d.App, d.Policy.Deadline, bCap)
			if err != nil {
				return nil, 0, err
			}
			if b > 0 {
				alloc.B = b
				alloc.Est = est
				alloc.Feasible = true
				alloc.GridLoad = est.GridLoad
				remaining -= est.GridLoad
			}
		}
		if !alloc.Feasible && bCap >= 1 {
			// Report what the class would have achieved at its ceiling
			// so the caller can see how far off the deadline it is.
			est, err := EstimateMakespan(d.App, MultipleStrategy(m, bCap))
			if err != nil {
				return nil, 0, err
			}
			alloc.Est = est
		}
		out = append(out, alloc)
	}
	return out, remaining, nil
}
