package workload

import (
	"math"
	"math/rand"
	"testing"

	"gridstrat/internal/core"
	"gridstrat/internal/trace"
)

func testModel(t testing.TB) core.Model {
	t.Helper()
	spec, err := trace.LookupDataset("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApplicationValidate(t *testing.T) {
	bad := []Application{
		{Tasks: 0, WaveWidth: 10, Runtime: 1},
		{Tasks: 10, WaveWidth: 0, Runtime: 1},
		{Tasks: 10, WaveWidth: 5, Runtime: -1},
		{Tasks: 10, WaveWidth: 5, Runtime: math.NaN()},
	}
	for _, a := range bad {
		if a.Validate() == nil {
			t.Errorf("%+v should fail validation", a)
		}
	}
	a := Application{Tasks: 101, WaveWidth: 25, Runtime: 60}
	if a.Validate() != nil {
		t.Fatal("valid app rejected")
	}
	if a.Waves() != 5 {
		t.Fatalf("waves = %d", a.Waves())
	}
}

func TestMakespanSingleTaskReducesToEJ(t *testing.T) {
	m := testModel(t)
	s := SingleStrategy(m)
	a := Application{Tasks: 1, WaveWidth: 1, Runtime: 0}
	est, err := EstimateMakespan(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Makespan-s.EJ) > 0.01*s.EJ {
		t.Fatalf("1-task makespan %v vs EJ %v", est.Makespan, s.EJ)
	}
}

func TestMakespanGrowsWithWidthAndTasks(t *testing.T) {
	m := testModel(t)
	s := MultipleStrategy(m, 2)
	base, err := EstimateMakespan(Application{Tasks: 100, WaveWidth: 50, Runtime: 60}, s)
	if err != nil {
		t.Fatal(err)
	}
	wider, err := EstimateMakespan(Application{Tasks: 100, WaveWidth: 100, Runtime: 60}, s)
	if err != nil {
		t.Fatal(err)
	}
	// Wider waves: fewer waves (1 vs 2) → smaller makespan despite the
	// slower slowest-task.
	if !(wider.Makespan < base.Makespan) {
		t.Fatalf("one wide wave %v should beat two waves %v", wider.Makespan, base.Makespan)
	}
	more, err := EstimateMakespan(Application{Tasks: 200, WaveWidth: 50, Runtime: 60}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !(more.Makespan > base.Makespan) {
		t.Fatal("more tasks should take longer")
	}
}

func TestMakespanStrategyOrdering(t *testing.T) {
	m := testModel(t)
	a := Application{Tasks: 300, WaveWidth: 60, Runtime: 120}
	ests, err := Compare(a, SingleStrategy(m), MultipleStrategy(m, 5), DelayedStrategy(m))
	if err != nil {
		t.Fatal(err)
	}
	single, multi, delayed := ests[0], ests[1], ests[2]
	// Order statistics amplify tail differences: 5-fold submission
	// must dominate, delayed sits between.
	if !(multi.Makespan < delayed.Makespan && delayed.Makespan < single.Makespan) {
		t.Fatalf("ordering violated: single %v delayed %v multiple %v",
			single.Makespan, delayed.Makespan, multi.Makespan)
	}
	// Load accounting.
	if multi.GridLoad != 5*60 {
		t.Fatalf("grid load %v", multi.GridLoad)
	}
	if single.GridLoad != 60 {
		t.Fatalf("grid load %v", single.GridLoad)
	}
}

func TestMakespanMatchesMonteCarlo(t *testing.T) {
	m := testModel(t)
	b := 3
	tInf, _ := core.OptimizeMultiple(m, b)
	s := MultipleStrategy(m, b)
	a := Application{Tasks: 40, WaveWidth: 40, Runtime: 0}
	est, err := EstimateMakespan(a, s)
	if err != nil {
		t.Fatal(err)
	}
	// Monte Carlo: max of 40 i.i.d. multiple-submission latencies.
	rng := rand.New(rand.NewSource(71))
	const reps = 4000
	var sum float64
	for r := 0; r < reps; r++ {
		maxJ := 0.0
		for k := 0; k < 40; k++ {
			j := 0.0
			for {
				best := math.Inf(1)
				for c := 0; c < b; c++ {
					if l := m.Sample(rng); l < best {
						best = l
					}
				}
				if best < tInf {
					j += best
					break
				}
				j += tInf
			}
			if j > maxJ {
				maxJ = j
			}
		}
		sum += maxJ
	}
	mc := sum / reps
	if math.Abs(est.Makespan-mc) > 0.03*mc {
		t.Fatalf("analytic wave makespan %v vs MC %v", est.Makespan, mc)
	}
}

func TestSmallestMeetingDeadline(t *testing.T) {
	m := testModel(t)
	a := Application{Tasks: 500, WaveWidth: 100, Runtime: 120}
	// A generous deadline: b=1 qualifies.
	b, est, err := SmallestMeetingDeadline(m, a, 1e7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b != 1 {
		t.Fatalf("generous deadline picked b=%d", b)
	}
	// A tight but feasible deadline needs replication.
	tight := est.Makespan / 3
	b2, est2, err := SmallestMeetingDeadline(m, a, tight, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= 1 {
		t.Fatalf("tight deadline picked b=%d", b2)
	}
	if est2.Makespan > tight {
		t.Fatalf("estimate %v misses deadline %v", est2.Makespan, tight)
	}
	// An impossible deadline returns 0.
	b3, _, err := SmallestMeetingDeadline(m, a, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b3 != 0 {
		t.Fatalf("impossible deadline picked b=%d", b3)
	}
	// Input validation.
	if _, _, err := SmallestMeetingDeadline(m, a, -1, 10); err == nil {
		t.Fatal("negative deadline should fail")
	}
	if _, _, err := SmallestMeetingDeadline(m, Application{}, 100, 10); err == nil {
		t.Fatal("invalid app should fail")
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := EstimateMakespan(Application{}, Strategy{}); err == nil {
		t.Fatal("invalid app should fail")
	}
	if _, err := EstimateMakespan(Application{Tasks: 1, WaveWidth: 1}, Strategy{Name: "x"}); err == nil {
		t.Fatal("nil CDF should fail")
	}
}
