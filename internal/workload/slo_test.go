package workload

import (
	"math"
	"testing"
)

func TestClassParseAndOrder(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Error("unknown class accepted")
	}
	cs := Classes()
	if len(cs) != 3 || cs[0] != ClassCritical || cs[2] != ClassSheddable {
		t.Errorf("Classes() = %v, want critical..sheddable in priority order", cs)
	}
}

func TestClassPolicyValidate(t *testing.T) {
	good := ClassPolicy{Class: ClassStandard, Deadline: 1000, Target: 0.9, MaxParallel: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	bad := []ClassPolicy{
		{Class: numClasses, Deadline: 1000, Target: 0.9, MaxParallel: 2},
		{Class: ClassCritical, Deadline: 0, Target: 0.9, MaxParallel: 2},
		{Class: ClassCritical, Deadline: math.Inf(1), Target: 0.9, MaxParallel: 2},
		{Class: ClassCritical, Deadline: 1000, Target: 0, MaxParallel: 2},
		{Class: ClassCritical, Deadline: 1000, Target: 1, MaxParallel: 2},
		{Class: ClassCritical, Deadline: 1000, Target: 0.9, MaxParallel: 0.5},
		{Class: ClassCritical, Deadline: 1000, Target: 0.9, MaxParallel: 2, Budget: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: invalid policy %+v accepted", i, p)
		}
	}
}

func TestDefaultPoliciesShape(t *testing.T) {
	ps := DefaultPolicies(500)
	if len(ps) != 3 {
		t.Fatalf("got %d policies", len(ps))
	}
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("default policy %d invalid: %v", i, err)
		}
	}
	if ps[0].Class != ClassCritical || ps[1].Class != ClassStandard || ps[2].Class != ClassSheddable {
		t.Error("default policies out of priority order")
	}
	// Deadlines loosen and targets relax down the priority ladder.
	if !(ps[0].Deadline < ps[1].Deadline && ps[1].Deadline < ps[2].Deadline) {
		t.Error("deadlines do not loosen with priority")
	}
	if !(ps[0].Target >= ps[1].Target && ps[1].Target >= ps[2].Target) {
		t.Error("targets do not relax with priority")
	}
	if !(ps[0].MaxParallel > ps[2].MaxParallel) {
		t.Error("critical does not get the larger copy budget")
	}
}

func TestContendedAllocationPriorityOrder(t *testing.T) {
	m := testModel(t)
	app := Application{Tasks: 50, WaveWidth: 10, Runtime: 60}
	// Generous deadline so every class is individually feasible at b=1;
	// capacity 25 covers only the first two wave widths at b=1.
	pols := DefaultPolicies(1e6)
	demands := []ClassDemand{
		{Policy: pols[2], App: app}, // deliberately out of order:
		{Policy: pols[0], App: app}, // the planner must sort by class
		{Policy: pols[1], App: app},
	}
	allocs, left, err := SmallestMeetingDeadlineContended(m, demands, 25, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 3 {
		t.Fatalf("got %d allocations", len(allocs))
	}
	for i, want := range []Class{ClassCritical, ClassStandard, ClassSheddable} {
		if allocs[i].Class != want {
			t.Fatalf("allocation %d is %s, want %s", i, allocs[i].Class, want)
		}
	}
	if !allocs[0].Feasible || !allocs[1].Feasible {
		t.Fatalf("critical/standard infeasible under generous deadline: %+v", allocs[:2])
	}
	// The sheddable class found no capacity left (25 - 10 - 10 < 10)
	// and must be refused without consuming anything.
	if allocs[2].Feasible {
		t.Errorf("sheddable feasible with %v capacity left before it", 25-allocs[0].GridLoad-allocs[1].GridLoad)
	}
	if allocs[2].GridLoad != 0 {
		t.Errorf("infeasible class consumed %v capacity", allocs[2].GridLoad)
	}
	if left < 0 {
		t.Errorf("capacity over-committed: %v left", left)
	}
}

func TestContendedAllocationTightDeadlineReportsInfeasible(t *testing.T) {
	m := testModel(t)
	app := Application{Tasks: 20, WaveWidth: 5, Runtime: 1}
	pol := ClassPolicy{Class: ClassCritical, Deadline: 1, Target: 0.9, MaxParallel: 4}
	allocs, left, err := SmallestMeetingDeadlineContended(m, []ClassDemand{{Policy: pol, App: app}}, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].Feasible {
		t.Fatal("1-second application deadline reported feasible")
	}
	if allocs[0].Est.Makespan <= 1 {
		t.Errorf("diagnostic estimate %v not populated", allocs[0].Est.Makespan)
	}
	if left != 100 {
		t.Errorf("infeasible class consumed capacity: %v left", left)
	}
}

func TestContendedAllocationValidation(t *testing.T) {
	m := testModel(t)
	app := Application{Tasks: 10, WaveWidth: 5, Runtime: 1}
	pol := ClassPolicy{Class: ClassCritical, Deadline: 1000, Target: 0.9, MaxParallel: 2}
	if _, _, err := SmallestMeetingDeadlineContended(m, nil, 0, 4); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, _, err := SmallestMeetingDeadlineContended(m, nil, 10, 0); err == nil {
		t.Error("maxB 0 accepted")
	}
	badPol := pol
	badPol.Target = 2
	if _, _, err := SmallestMeetingDeadlineContended(m, []ClassDemand{{Policy: badPol, App: app}}, 10, 4); err == nil {
		t.Error("invalid policy accepted")
	}
	badApp := app
	badApp.Tasks = 0
	if _, _, err := SmallestMeetingDeadlineContended(m, []ClassDemand{{Policy: pol, App: badApp}}, 10, 4); err == nil {
		t.Error("invalid application accepted")
	}
}
