package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// BackendState is one backend's view as of its last health probe.
// Healthy means the probe answered 200; Ready additionally means the
// backend is past its WAL boot replay ("recovering" backends are alive
// but must not receive model traffic yet — their registries are still
// filling, so a miss there is not a 404).
type BackendState struct {
	Healthy   bool      `json:"healthy"`
	Ready     bool      `json:"ready"`
	Models    int       `json:"models"`
	Version   string    `json:"version,omitempty"`
	Error     string    `json:"error,omitempty"`
	CheckedAt time.Time `json:"-"`
}

// healthzBody is the slice of the backend /v1/healthz response the
// checker consumes.
type healthzBody struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Models  int    `json:"models"`
	WAL     string `json:"wal"`
}

// Checker polls every backend's /v1/healthz on an interval and keeps
// the latest BackendState per member. Up/down transitions are reported
// to the onTransition hook (the router uses it to clear stale
// placements). It is safe for concurrent use.
type Checker struct {
	members  []string
	client   *http.Client
	interval time.Duration

	// onTransition fires on ready-state edges: up=true when a backend
	// becomes ready (fresh boot or replay finished), up=false when it
	// stops being ready. Called without the state lock held.
	onTransition func(member string, up bool)

	mu     sync.RWMutex
	states map[string]BackendState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{} // closed when the polling loop exits
	started  bool          // whether the loop was ever launched
}

// NewChecker builds a checker over the member base URLs. interval <= 0
// disables the background loop (CheckNow still works — tests and boot
// paths drive it synchronously). hc nil falls back to a 2-second
// timeout client.
func NewChecker(members []string, interval time.Duration, hc *http.Client, onTransition func(string, bool)) *Checker {
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Second}
	}
	c := &Checker{
		members:      members,
		client:       hc,
		interval:     interval,
		onTransition: onTransition,
		states:       make(map[string]BackendState, len(members)),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for _, m := range members {
		c.states[m] = BackendState{} // unknown = unhealthy until probed
	}
	return c
}

// Start launches the background polling loop (no-op without an
// interval). Successive sweeps are spaced interval ±20% (uniform
// jitter, re-drawn every cycle) so a fleet of routers booted together
// — or restarted together by an orchestrator after an outage — does
// not probe every backend in synchronized waves.
func (c *Checker) Start() {
	if c.interval <= 0 || c.started {
		return
	}
	c.started = true
	go func() {
		defer close(c.done)
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		jittered := func() time.Duration {
			return time.Duration(float64(c.interval) * (0.8 + 0.4*rng.Float64()))
		}
		t := time.NewTimer(jittered())
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.CheckNow(context.Background())
				t.Reset(jittered())
			}
		}
	}()
}

// Close stops the polling loop (if one is running) and waits for it.
func (c *Checker) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started {
		<-c.done
	}
}

// CheckNow probes every member once, in parallel, and applies the
// results. It returns when every probe has resolved. A nil context is
// allowed (background).
func (c *Checker) CheckNow(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	var wg sync.WaitGroup
	results := make([]BackendState, len(c.members))
	for i, m := range c.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			results[i] = c.probe(ctx, m)
		}(i, m)
	}
	wg.Wait()

	type edge struct {
		member string
		up     bool
	}
	var edges []edge
	c.mu.Lock()
	for i, m := range c.members {
		prev := c.states[m]
		next := results[i]
		c.states[m] = next
		if prev.Ready != next.Ready {
			edges = append(edges, edge{m, next.Ready})
		}
	}
	c.mu.Unlock()
	if c.onTransition != nil {
		for _, e := range edges {
			c.onTransition(e.member, e.up)
		}
	}
}

// probe performs one health request against a member.
func (c *Checker) probe(ctx context.Context, member string) BackendState {
	st := BackendState{CheckedAt: time.Now()}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/v1/healthz", nil)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	resp, err := c.client.Do(req)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.Error = fmt.Sprintf("healthz status %d", resp.StatusCode)
		return st
	}
	var body healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		st.Error = "decoding healthz: " + err.Error()
		return st
	}
	st.Healthy = true
	st.Ready = body.WAL != "recovering"
	st.Models = body.Models
	st.Version = body.Version
	return st
}

// Ready reports whether the member is healthy and past its boot
// replay — eligible for model traffic.
func (c *Checker) Ready(member string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := c.states[member]
	return st.Healthy && st.Ready
}

// State returns the member's latest probe result.
func (c *Checker) State(member string) BackendState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.states[member]
}

// Snapshot returns a copy of every member's latest state.
func (c *Checker) Snapshot() map[string]BackendState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]BackendState, len(c.states))
	for m, st := range c.states {
		out[m] = st
	}
	return out
}
