package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerFSM drives the three-state machine on a fake clock:
// threshold consecutive failures trip it, the cooldown gates the
// half-open probe, exactly one probe is admitted, and the probe's
// outcome decides between closing and re-opening.
func TestBreakerFSM(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second, func() time.Time { return now })

	if !b.Allow() || !b.WouldAllow() {
		t.Fatal("closed breaker should admit")
	}
	b.Report(false)
	b.Report(false)
	if !b.Allow() {
		t.Fatal("under-threshold failures should not trip")
	}
	b.Report(true) // a success resets the consecutive count
	b.Report(false)
	b.Report(false)
	if state, _ := b.Status(); state != "closed" {
		t.Fatalf("reset count should keep it closed, got %s", state)
	}
	b.Report(false)
	if state, _ := b.Status(); state != "open" {
		t.Fatalf("threshold failures should open it, got %s", state)
	}
	if b.Allow() || b.WouldAllow() {
		t.Fatal("open breaker admitted inside the cooldown")
	}
	b.Report(true) // late outcome from before the trip: ignored
	if state, _ := b.Status(); state != "open" {
		t.Fatal("late report must not close an open breaker")
	}

	now = now.Add(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted 1ms before the cooldown elapsed")
	}
	now = now.Add(time.Millisecond)
	if !b.WouldAllow() {
		t.Fatal("WouldAllow should report the cooled-down breaker admittable")
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker should admit the probe")
	}
	if b.Allow() || b.WouldAllow() {
		t.Fatal("second request admitted alongside the half-open probe")
	}
	b.Report(false) // probe failed: re-open with a fresh cooldown
	if state, _ := b.Status(); state != "open" {
		t.Fatalf("failed probe should re-open, got %s", state)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted without a fresh cooldown")
	}

	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Report(true)
	state, transitions := b.Status()
	if state != "closed" {
		t.Fatalf("successful probe should close, got %s", state)
	}
	// closed→open, open→half, half→open, open→half, half→closed.
	if transitions != 5 {
		t.Fatalf("transitions: want 5, got %d", transitions)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker should admit")
	}
}

// TestRetryBudget: the bucket starts full (cold failover must work),
// spends one token per extra attempt, earns the ratio per primary and
// never exceeds the burst.
func TestRetryBudget(t *testing.T) {
	rb := newRetryBudget(0.5, 2)
	if !rb.take() || !rb.take() {
		t.Fatal("fresh budget should grant its burst")
	}
	if rb.take() {
		t.Fatal("exhausted budget granted a token")
	}
	rb.earn() // 0.5: still under one token
	if rb.take() {
		t.Fatal("half a token granted")
	}
	rb.earn() // 1.0
	if !rb.take() {
		t.Fatal("earned token refused")
	}
	for i := 0; i < 100; i++ {
		rb.earn()
	}
	if !rb.take() || !rb.take() {
		t.Fatal("earning should refill up to the burst")
	}
	if rb.take() {
		t.Fatal("budget exceeded its burst cap")
	}
}

// TestLatencyTrackerP95: no answer until enough samples, then the
// rolling 95th percentile over the ring.
func TestLatencyTrackerP95(t *testing.T) {
	tr := &latencyTracker{}
	if _, ok := tr.p95(); ok {
		t.Fatal("cold tracker reported a p95")
	}
	for i := 1; i <= 16; i++ {
		tr.note(time.Duration(i) * time.Millisecond)
	}
	p, ok := tr.p95()
	if !ok || p != 15*time.Millisecond {
		t.Fatalf("p95 of 1..16ms: want 15ms, got %v (ok=%v)", p, ok)
	}
	// The ring forgets: after a full window of 5ms samples the old
	// spread is gone.
	for i := 0; i < latencySamples; i++ {
		tr.note(5 * time.Millisecond)
	}
	if p, _ := tr.p95(); p != 5*time.Millisecond {
		t.Fatalf("post-wrap p95: want 5ms, got %v", p)
	}
}

// resilientBackendStub is an httptest backend that always reports
// healthy/ready but serves model routes from a switchable handler —
// the "answers healthz, fails real work" failure mode that only a
// circuit breaker (not the health checker) can catch.
func resilientBackendStub(t *testing.T, model http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "version": "stub", "models": 1, "wal": "ready",
		})
	})
	mux.HandleFunc("/", model)
	s := httptest.NewServer(mux)
	t.Cleanup(s.Close)
	return s
}

// newStubRouter builds a router over the stub with tight breaker
// settings and a front server + fast cooldowns for the tests.
func newStubRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	rt.CheckNow()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, front
}

// TestBreakerTripAndRecover: consecutive 5xx from a healthz-green
// backend open its breaker (requests fail fast with no_backend), the
// cooldown admits a single half-open probe, and a successful probe
// closes the breaker and restores traffic.
func TestBreakerTripAndRecover(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	stub := resilientBackendStub(t, func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":{"code":"boom","message":"injected"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"m"}`)
	})
	rt, front := newStubRouter(t, Config{
		Backends:         []string{stub.URL},
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		HedgeDelay:       -1, // hedging off: exact request counting
	})

	get := func() int {
		resp, err := http.Get(front.URL + "/v1/models/m")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Two 5xx responses pass through (the backend answered; the client
	// sees them) and trip the breaker.
	if got := get(); got != http.StatusInternalServerError {
		t.Fatalf("want passthrough 500, got %d", got)
	}
	if got := get(); got != http.StatusInternalServerError {
		t.Fatalf("want passthrough 500, got %d", got)
	}
	if state, _ := rt.breakers[stub.URL].Status(); state != "open" {
		t.Fatalf("breaker after threshold 5xx: want open, got %s", state)
	}
	// Open breaker: the backend is not routable, so the request fails
	// fast without touching it.
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: want 503, got %d", got)
	}

	// Fix the backend; after the cooldown the half-open probe goes
	// through, closes the breaker and traffic resumes.
	failing.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for get() != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	state, transitions := rt.breakers[stub.URL].Status()
	if state != "closed" {
		t.Fatalf("post-recovery breaker: want closed, got %s", state)
	}
	if transitions < 3 { // closed→open→half_open→closed
		t.Fatalf("transitions: want >= 3, got %d", transitions)
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("recovered backend: want 200, got %d", got)
	}
}

// TestHedgedReadWins: a read whose primary attempt stalls is
// duplicated to a second connection after the hedge delay; the fast
// duplicate answers, stamped X-Gridstrat-Hedged, and the stalled
// primary's cancellation is not held against the backend's breaker.
func TestHedgedReadWins(t *testing.T) {
	var calls atomic.Int64
	stub := resilientBackendStub(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // stall the primary until it is cancelled
			case <-r.Context().Done():
				return
			case <-time.After(5 * time.Second):
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"m"}`)
	})
	rt, front := newStubRouter(t, Config{
		Backends:   []string{stub.URL},
		HedgeDelay: 20 * time.Millisecond,
	})

	start := time.Now()
	resp, err := http.Get(front.URL + "/v1/models/m")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read: want 200, got %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Gridstrat-Hedged") != "1" {
		t.Fatal("winning response should be stamped X-Gridstrat-Hedged")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge should beat the stalled primary; took %v", elapsed)
	}
	if rt.hedged.Load() != 1 || rt.hedgeWins.Load() != 1 {
		t.Fatalf("hedge counters: want 1/1, got %d/%d", rt.hedged.Load(), rt.hedgeWins.Load())
	}
	// The cancelled primary reported nothing: a lost hedge race says
	// nothing about backend health.
	if state, _ := rt.breakers[stub.URL].Status(); state != "closed" {
		t.Fatalf("breaker after hedge win: want closed, got %s", state)
	}
}

// TestHedgeWinnerBodyNotTruncated: the hedge race's cancellation must
// not abort the winner's in-flight body read. The winning attempt
// streams a large body slowly (flushed chunks); the client must
// receive every byte even though the losing attempt is cancelled the
// moment the winner's headers arrive.
func TestHedgeWinnerBodyNotTruncated(t *testing.T) {
	const chunk, chunks = 4096, 64 // 256 KiB, streamed over ~130ms
	var calls atomic.Int64
	stub := resilientBackendStub(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // stall the primary until it is cancelled
			case <-r.Context().Done():
				return
			case <-time.After(5 * time.Second):
			}
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		f, _ := w.(http.Flusher)
		buf := bytes.Repeat([]byte{'x'}, chunk)
		for i := 0; i < chunks; i++ {
			if _, err := w.Write(buf); err != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
	_, front := newStubRouter(t, Config{
		Backends:   []string{stub.URL},
		HedgeDelay: 20 * time.Millisecond,
	})

	resp, err := http.Get(front.URL + "/v1/models/m")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read: want 200, got %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Gridstrat-Hedged") != "1" {
		t.Fatal("winning response should be stamped X-Gridstrat-Hedged")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading winner body: %v", err)
	}
	if len(body) != chunk*chunks {
		t.Fatalf("winner body truncated: want %d bytes, got %d", chunk*chunks, len(body))
	}
}

// TestHedgeDeniedByBudget: with the retry budget drained, the hedge
// is refused (counted in retries_denied) and the slow primary answer
// is simply waited out — no load amplification under brownout.
func TestHedgeDeniedByBudget(t *testing.T) {
	var calls atomic.Int64
	stub := resilientBackendStub(t, func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n == 1 || n == 3 { // each request's primary stalls briefly
			select {
			case <-r.Context().Done():
				return
			case <-time.After(150 * time.Millisecond):
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"m"}`)
	})
	rt, front := newStubRouter(t, Config{
		Backends:         []string{stub.URL},
		HedgeDelay:       20 * time.Millisecond,
		RetryBudgetRatio: 0.01, // earns nothing meaningful during the test
		RetryBudgetBurst: 1,    // exactly one hedge token
	})

	get := func() *http.Response {
		resp, err := http.Get(front.URL + "/v1/models/m")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		resp.Body.Close()
		return resp
	}

	// First read: the single token funds the hedge, which wins.
	if resp := get(); resp.Header.Get("X-Gridstrat-Hedged") != "1" {
		t.Fatal("first read should be won by the hedge")
	}
	// Second read: budget empty — the hedge is denied and the primary
	// answers late, unhedged.
	resp := get()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unhedged slow read: want 200, got %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Gridstrat-Hedged") == "1" {
		t.Fatal("budget-denied read must not be hedged")
	}
	if rt.hedgeWins.Load() != 1 {
		t.Fatalf("hedge wins: want 1, got %d", rt.hedgeWins.Load())
	}
	if rt.retriesDenied.Load() != 1 {
		t.Fatalf("retries_denied: want 1, got %d", rt.retriesDenied.Load())
	}
}

// TestRouterStatsResilienceSurface: the router's /v1/stats carries the
// breaker state per backend and the hedging counters.
func TestRouterStatsResilienceSurface(t *testing.T) {
	stub := resilientBackendStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":{"code":"boom","message":"injected"}}`)
	})
	_, front := newStubRouter(t, Config{
		Backends:         []string{stub.URL},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		HedgeDelay:       -1,
	})
	resp, err := http.Get(front.URL + "/v1/models/m")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sresp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := jsonDecode(sresp, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	bs, ok := stats.Backends[stub.URL]
	if !ok {
		t.Fatalf("stats missing backend %s", stub.URL)
	}
	if bs.Breaker != "open" || bs.BreakerTransitions == 0 {
		t.Fatalf("backend breaker stats: want open with transitions, got %q/%d",
			bs.Breaker, bs.BreakerTransitions)
	}
}
