package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridstrat/internal/server"
)

// jsonDecode drains and decodes one HTTP response body.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r1, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(members, 64)

	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("model-%d", i)
		o := r1.Owner(k)
		if o != r2.Owner(k) {
			t.Fatalf("ring not deterministic for %q", k)
		}
		counts[o]++
	}
	for _, m := range members {
		n := counts[m]
		if n < keys/6 || n > keys/2+keys/10 {
			t.Fatalf("unbalanced ring: %s owns %d of %d keys (%+v)", m, n, keys, counts)
		}
	}
}

func TestRingCandidatesDistinctAndOrdered(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r, err := NewRing(members, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("m%d", i)
		cands := r.Candidates(k, 3)
		if len(cands) != 3 {
			t.Fatalf("want 3 candidates, got %v", cands)
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("duplicate candidate in %v", cands)
			}
			seen[c] = true
		}
		if cands[0] != r.Owner(k) {
			t.Fatalf("candidates[0] != owner for %q", k)
		}
	}
	if got := r.Candidates("x", 99); len(got) != len(members) {
		t.Fatalf("over-asking should clamp to member count, got %d", len(got))
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty member accepted")
	}
}

// backend is one test gridstratd with a restartable listener: Close
// simulates a crash (the WAL stays on disk), restart brings a fresh
// server up on the same address over the same WAL directory.
type backend struct {
	addr   string
	walDir string
	srv    *server.Server
	hs     *http.Server
	ln     net.Listener
}

func startBackend(t *testing.T, addr, walDir string) *backend {
	t.Helper()
	return startBackendCfg(t, addr, walDir, server.Config{})
}

// startBackendCfg starts a backend with extra Config knobs (admission
// limits, chaos scenario) layered over the standard test base; the
// soak harness uses it to build a faulty fleet.
func startBackendCfg(t *testing.T, addr, walDir string, cfg server.Config) *backend {
	t.Helper()
	cfg.WALDir, cfg.WALSync, cfg.DefaultWindow = walDir, "none", 1e6
	s := server.MustNew(cfg)
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	b := &backend{
		addr:   ln.Addr().String(),
		walDir: walDir,
		srv:    s,
		hs:     &http.Server{Handler: s.Handler()},
		ln:     ln,
	}
	go func() { _ = b.hs.Serve(ln) }()
	return b
}

func (b *backend) url() string { return "http://" + b.addr }

// kill closes the listener and server without any graceful handoff.
func (b *backend) kill() { _ = b.hs.Close() }

func newTestCluster(t *testing.T, n int) ([]*backend, *Router, *server.Client) {
	t.Helper()
	backends := make([]*backend, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = startBackend(t, "127.0.0.1:0", t.TempDir())
		urls[i] = backends[i].url()
		t.Cleanup(backends[i].kill)
	}
	rt, err := NewRouter(Config{Backends: urls, Replicas: 3})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	rt.CheckNow()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return backends, rt, server.NewClient(front.URL, front.Client())
}

func createModels(t *testing.T, c *server.Client, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("model-%02d", i)
		if _, err := c.CreateModel(context.Background(), server.CreateModelRequest{
			ID: id, Dataset: "2006-IX",
		}); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestRouterSpreadsAndServes: models created through the router land
// on their ring owners, every model answers queries through the
// router, and the fan-out endpoints aggregate the fleet.
func TestRouterSpreadsAndServes(t *testing.T) {
	backends, rt, c := newTestCluster(t, 3)
	ctx := context.Background()
	ids := createModels(t, c, 12)

	// Placement followed the ring: each backend's registry holds
	// exactly the models it owns.
	spread := 0
	for _, b := range backends {
		n := b.srv.Registry().Len()
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("12 models landed on %d backend(s); want a spread", spread)
	}
	for _, id := range ids {
		owner := rt.ring.Owner(id)
		info, err := c.GetModel(ctx, id, 0)
		if err != nil {
			t.Fatalf("get %s (owner %s): %v", id, owner, err)
		}
		if info.ID != id {
			t.Fatalf("get %s returned %s", id, info.ID)
		}
	}

	list, err := c.ListModels(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != len(ids) {
		t.Fatalf("list: want %d models, got %d", len(ids), len(list))
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Models != len(ids) {
		t.Fatalf("stats models: want %d, got %d", len(ids), stats.Models)
	}

	// Observations flow to the owner and stick.
	if _, err := c.Observe(ctx, ids[0], server.ObserveRequest{Latencies: []float64{100, 200}}); err != nil {
		t.Fatalf("observe: %v", err)
	}
}

// TestRouterBackendDownPartialFanout: with one backend killed, list
// and stats still answer from the survivors and report the failure;
// models owned by the dead backend answer 502/503 rather than a
// misleading 404; models on live backends keep working.
func TestRouterBackendDownPartialFanout(t *testing.T) {
	backends, rt, c := newTestCluster(t, 3)
	ctx := context.Background()
	ids := createModels(t, c, 12)

	victim := backends[0]
	var deadIDs, liveIDs []string
	for _, id := range ids {
		if rt.ring.Owner(id) == victim.url() {
			deadIDs = append(deadIDs, id)
		} else {
			liveIDs = append(liveIDs, id)
		}
	}
	if len(deadIDs) == 0 || len(liveIDs) == 0 {
		t.Skipf("degenerate spread: dead=%d live=%d", len(deadIDs), len(liveIDs))
	}

	victim.kill()
	rt.CheckNow()

	list, err := c.ListModels(ctx)
	if err != nil {
		t.Fatalf("partial list: %v", err)
	}
	if len(list) != len(liveIDs) {
		t.Fatalf("partial list: want %d models, got %d", len(liveIDs), len(list))
	}
	// The router's stats shape carries the partial-failure report;
	// fetch it raw (the single-node client type has no such field).
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("partial stats: %v", err)
	}
	var rstats StatsResponse
	if err := jsonDecode(resp, &rstats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if !rstats.Partial || len(rstats.Failed) != 1 {
		t.Fatalf("stats should report the dead backend: partial=%v failed=%v",
			rstats.Partial, rstats.Failed)
	}
	if _, ok := rstats.Failed[victim.url()]; !ok {
		t.Fatalf("failed_backends misses the victim: %v", rstats.Failed)
	}

	for _, id := range liveIDs {
		if _, err := c.GetModel(ctx, id, 0); err != nil {
			t.Fatalf("live model %s: %v", id, err)
		}
	}
	// Dead-owned models: the data lives (only) in the victim's WAL, so
	// the router must surface unavailability, not 404. A failover
	// successor answers 404 from its own registry — also acceptable
	// per the routing contract — but the placement must not flap into
	// an error.
	for _, id := range deadIDs {
		_, err := c.GetModel(ctx, id, 0)
		if err == nil {
			t.Fatalf("dead-owned model %s answered without its backend", id)
		}
	}
}

// TestRouterKillAndRecoverBackend is the N=3 membership-change pin:
// kill a backend, watch its models fail over / 404, restart it over
// the same WAL directory, and watch the router route the replayed
// models home again with their ingested state intact.
func TestRouterKillAndRecoverBackend(t *testing.T) {
	backends, rt, c := newTestCluster(t, 3)
	ctx := context.Background()
	ids := createModels(t, c, 12)

	victim := backends[1]
	var victimIDs []string
	for _, id := range ids {
		if rt.ring.Owner(id) == victim.url() {
			victimIDs = append(victimIDs, id)
		}
	}
	if len(victimIDs) == 0 {
		t.Skip("ring gave the victim no models")
	}

	// Ingest onto a victim-owned model so recovery has real WAL state
	// to prove.
	obs, err := c.Observe(ctx, victimIDs[0], server.ObserveRequest{Latencies: []float64{111, 222, 333}})
	if err != nil {
		t.Fatalf("observe: %v", err)
	}
	wantVersion := obs.Version

	victim.kill()
	rt.CheckNow()
	if _, err := c.GetModel(ctx, victimIDs[0], 0); err == nil {
		t.Fatal("victim-owned model served while its backend is down")
	}

	// Restart on the same address over the same WAL dir: boot replay
	// restores the models, the health sweep sees it ready, and the
	// up-transition clears the failover placements so traffic goes
	// home.
	revived := startBackend(t, victim.addr, victim.walDir)
	t.Cleanup(revived.kill)
	rt.CheckNow()

	info, err := c.GetModel(ctx, victimIDs[0], 0)
	if err != nil {
		t.Fatalf("recovered model: %v", err)
	}
	if info.Version < wantVersion {
		t.Fatalf("recovered model lost ingested state: version %d < %d", info.Version, wantVersion)
	}
	if got := revived.srv.Registry().Len(); got != len(victimIDs) {
		t.Fatalf("replay restored %d models, want %d", got, len(victimIDs))
	}
	list, err := c.ListModels(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != len(ids) {
		t.Fatalf("post-recovery list: want %d, got %d", len(ids), len(list))
	}
}

// TestRouterHealthDegraded: the router healthz flips to "degraded"
// when a backend dies and back to "ok" when the fleet is whole.
func TestRouterHealthDegraded(t *testing.T) {
	backends, rt, _ := newTestCluster(t, 2)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	get := func() string {
		resp, err := http.Get(front.URL + "/v1/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		if err := jsonDecode(resp, &body); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return body.Status
	}
	if s := get(); s != "ok" {
		t.Fatalf("want ok, got %q", s)
	}
	backends[0].kill()
	rt.CheckNow()
	if s := get(); s != "degraded" {
		t.Fatalf("want degraded, got %q", s)
	}
}

// TestRouterCreateNeedsID: registration without a discoverable model
// ID is rejected at the router (it cannot place the request).
func TestRouterCreateNeedsID(t *testing.T) {
	_, rt, _ := newTestCluster(t, 2)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Post(front.URL+"/v1/models", "application/json", strings.NewReader(`{"dataset":"2006-IX"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
}

// TestCheckerTransitions: ready-edge callbacks fire on kill and
// revive.
func TestCheckerTransitions(t *testing.T) {
	b := startBackend(t, "127.0.0.1:0", t.TempDir())
	t.Cleanup(b.kill)

	var mu struct {
		edges []string
	}
	var lock = make(chan struct{}, 1)
	lock <- struct{}{}
	ch := NewChecker([]string{b.url()}, 0, nil, func(m string, up bool) {
		<-lock
		mu.edges = append(mu.edges, fmt.Sprintf("%v", up))
		lock <- struct{}{}
	})
	ch.CheckNow(context.Background())
	if !ch.Ready(b.url()) {
		t.Fatal("backend should be ready")
	}
	b.kill()
	deadline := time.Now().Add(5 * time.Second)
	for ch.Ready(b.url()) {
		if time.Now().After(deadline) {
			t.Fatal("backend never went unready")
		}
		ch.CheckNow(context.Background())
	}
	<-lock
	got := strings.Join(mu.edges, ",")
	lock <- struct{}{}
	if got != "true,false" {
		t.Fatalf("edges: want true,false got %s", got)
	}
}
