package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"gridstrat/internal/server"
)

// This file is the router's model-aware batch fan-out: one client
// batch is partitioned by ring owner, each backend receives exactly
// one sub-batch of the items it serves, and the sub-responses are
// merged back in the client's item order. The batch keeps its
// single-daemon semantics through the router — per-item error
// envelopes, partial-admission sheds with Retry-After — with two
// router-origin item errors added: "no_backend" (no routable owner
// for the item's model) and "bad_gateway" (the owner's sub-batch
// failed in transport after the failover retry).

// proxyBufPool recycles the buffers the router reads proxied write
// bodies into (handleModel, handleCreate, handleBatchPlan): bodies
// must be buffered so a failover retry can resend them, and the
// scratch is recycled instead of re-allocated per request.
var proxyBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledProxyBuf caps the capacity returned to the pool, so one
// trace-upload-sized body does not pin megabytes in it.
const maxPooledProxyBuf = 1 << 18

func getProxyBuf() *bytes.Buffer {
	b := proxyBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putProxyBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledProxyBuf {
		proxyBufPool.Put(b)
	}
}

// batchSlot is one item of a client batch paired with its position in
// the client's order.
type batchSlot struct {
	item server.BatchItem
	pos  int
}

// handleBatchPlan serves POST /v1/batch/plan at the router: partition
// the items by ring owner, post one sub-batch per backend
// concurrently, merge preserving order. A sub-batch that fails in
// transport drops its models' placements and its items are
// re-partitioned for one failover round (budget permitting) — the
// batch analogue of handleModel's single retry — before answering
// "bad_gateway" per item.
func (rt *Router) handleBatchPlan(w http.ResponseWriter, r *http.Request) {
	buf := getProxyBuf()
	defer putProxyBuf(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)); err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large", err.Error())
		return
	}
	var req server.BatchPlanRequest
	if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch: provide items")
		return
	}

	rt.budget.earn()
	resp := server.BatchPlanResponse{
		Results: make([]server.BatchItemResult, len(req.Items)),
	}
	pending := make([]batchSlot, 0, len(req.Items))
	for i, it := range req.Items {
		pending = append(pending, batchSlot{item: it, pos: i})
	}
	var retryAfter string
	for round := 0; len(pending) > 0 && round < 2; round++ {
		retry := round == 0 // failed groups re-partition once
		pending, retryAfter = rt.batchRound(r, pending, &resp, retryAfter, retry)
	}
	for _, sl := range pending { // transport failure after the retry round
		resp.Results[sl.pos] = server.BatchItemResult{Error: &server.BatchItemError{
			Status:  http.StatusBadGateway,
			Code:    "bad_gateway",
			Message: fmt.Sprintf("sub-batch for model %q failed in transport", sl.item.Model),
		}}
	}
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRound partitions the slots by owner, posts every group's
// sub-batch concurrently and merges the outcomes into resp. It
// returns the slots whose group failed in transport (empty unless
// retry granted them another round) and the strongest Retry-After
// hint seen so far.
func (rt *Router) batchRound(r *http.Request, slots []batchSlot, resp *server.BatchPlanResponse, retryAfter string, retry bool) ([]batchSlot, string) {
	groups := make(map[string][]batchSlot)
	for _, sl := range slots {
		member := rt.ownerFor(sl.item.Model)
		if member == "" {
			resp.Results[sl.pos] = server.BatchItemResult{Error: &server.BatchItemError{
				Status:  http.StatusServiceUnavailable,
				Code:    "no_backend",
				Message: fmt.Sprintf("no ready backend for model %q", sl.item.Model),
			}}
			continue
		}
		groups[member] = append(groups[member], sl)
	}

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		failed []batchSlot
	)
	for member, g := range groups {
		wg.Add(1)
		go func(member string, g []batchSlot) {
			defer wg.Done()
			sub, ra, err := rt.sendSubBatch(r, member, g)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// Transport failure: this backend answered nothing. Drop
				// every placement routed onto it so the next round (and
				// the next request) re-picks, and queue the items for the
				// failover round if it is still open and the budget pays.
				for _, sl := range g {
					rt.dropPlacement(sl.item.Model, member)
				}
				if retry && rt.budget.take() {
					failed = append(failed, g...)
				} else {
					if retry {
						rt.retriesDenied.Add(1)
					}
					for _, sl := range g {
						resp.Results[sl.pos] = server.BatchItemResult{Error: &server.BatchItemError{
							Status:  http.StatusBadGateway,
							Code:    "bad_gateway",
							Message: fmt.Sprintf("backend %s: %v", member, err),
						}}
					}
				}
				return
			}
			if ra != "" {
				retryAfter = ra
			}
			resp.Admitted += sub.Admitted
			resp.Shed += sub.Shed
			for k, res := range sub.Results {
				resp.Results[g[k].pos] = res
			}
		}(member, g)
	}
	wg.Wait()
	return failed, retryAfter
}

// sendSubBatch posts one backend's sub-batch and decodes its outcome
// as positional results (len == len(g)):
//   - 200: the backend's per-item envelopes pass through (its shed
//     tail included, surfacing the Retry-After hint).
//   - whole-batch 429: every item becomes a "shed" envelope, again
//     with the Retry-After hint.
//   - any other HTTP error: the backend's envelope is replicated onto
//     each item.
//
// Only transport failures return a non-nil error — HTTP-level errors
// are per-item results, never a failed sub-batch.
func (rt *Router) sendSubBatch(r *http.Request, member string, g []batchSlot) (server.BatchPlanResponse, string, error) {
	items := make([]server.BatchItem, len(g))
	for i, sl := range g {
		items[i] = sl.item
	}
	body, err := json.Marshal(server.BatchPlanRequest{Items: items})
	if err != nil {
		return failSubBatch(len(g), http.StatusInternalServerError, "internal", err.Error()), "", nil
	}
	resp, err := rt.send(r.Context(), r, member, body)
	if err != nil {
		return server.BatchPlanResponse{}, "", err
	}
	defer resp.Body.Close()
	ra := resp.Header.Get("Retry-After")
	if resp.StatusCode == http.StatusOK {
		var sub server.BatchPlanResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil || len(sub.Results) != len(g) {
			return failSubBatch(len(g), http.StatusBadGateway, "bad_gateway",
				fmt.Sprintf("malformed sub-batch response from %s (%d results for %d items)",
					member, len(sub.Results), len(g))), "", nil
		}
		return sub, ra, nil
	}
	// Non-200: replicate the backend's envelope onto every item. A
	// whole-batch 429 keeps its "shed" code so clients see the same
	// vocabulary they would against a single daemon.
	code, msg := "unknown", resp.Status
	var env server.ErrorEnvelope
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&env); err == nil && env.Error.Code != "" {
		code, msg = env.Error.Code, env.Error.Message
	}
	out := failSubBatch(len(g), resp.StatusCode, code, msg)
	if resp.StatusCode == http.StatusTooManyRequests {
		out.Shed = len(g)
	}
	return out, ra, nil
}

// failSubBatch renders one error envelope onto n positional items.
func failSubBatch(n, status int, code, msg string) server.BatchPlanResponse {
	e := &server.BatchItemError{Status: status, Code: code, Message: msg}
	out := server.BatchPlanResponse{Results: make([]server.BatchItemResult, n)}
	for i := range out.Results {
		out.Results[i] = server.BatchItemResult{Error: e}
	}
	return out
}
