package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridstrat/internal/chaos"
	"gridstrat/internal/server"
)

// TestChaosSoak is the end-to-end resilience pin: a three-node fleet
// with deterministic chaos on both sides of the router (server-side
// latency spikes and 5xx blips, transport-side connection resets), a
// mixed-class workload, and a kill-and-recover of one backend in the
// middle. The hard invariants:
//
//   - Zero acked-observation loss: after the dust settles, every
//     model's window holds exactly its base records plus every batch
//     whose Observe was acknowledged — kills, sheds, resets and
//     failovers included.
//   - Bounded shed: the sequential critical writer is never shed
//     (sheddable/standard give way first); sheddable traffic does get
//     shed, with the Retry-After contract intact.
//   - The fleet converges: after the victim revives, every model
//     answers again (breakers re-close, placements come home).
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second test")
	}
	ctx := context.Background()

	// Server-side chaos: half of all model reads stall 50ms while
	// holding their admission slot (that is what fills the gate and
	// forces sheds), and 5% fail with a synthetic 5xx (that is what
	// exercises the breakers). Writes are untouched — an injected fault
	// must never be able to lose a write the backend acked.
	sc := &chaos.Scenario{Seed: 7, Rules: []chaos.Rule{
		{Name: "read-stall", PathPrefix: "/v1/models/", Method: http.MethodGet,
			Fault: chaos.FaultLatency, Latency: 50 * time.Millisecond, P: 0.5},
		{Name: "read-blip", PathPrefix: "/v1/models/", Method: http.MethodGet,
			Fault: chaos.FaultError, P: 0.05},
	}}
	bcfg := server.Config{MaxInflight: 4, Chaos: sc}

	backends := make([]*backend, 3)
	urls := make([]string, 3)
	for i := range backends {
		backends[i] = startBackendCfg(t, "127.0.0.1:0", t.TempDir(), bcfg)
		urls[i] = backends[i].url()
		t.Cleanup(backends[i].kill)
	}

	// Transport-side chaos: 10% of forwarded reads lose their
	// connection mid-flight. Reads only — a reset POST would leave the
	// test unable to know whether the backend applied the batch, which
	// is the client's retry problem, not this invariant's.
	out := chaos.NewTransport(nil, chaos.Scenario{Seed: 11, Rules: []chaos.Rule{
		{Name: "net-reset", PathPrefix: "/v1/models/", Method: http.MethodGet,
			Fault: chaos.FaultReset, P: 0.1},
	}})
	rt, err := NewRouter(Config{
		Backends:         urls,
		Replicas:         3,
		Client:           &http.Client{Transport: out, Timeout: 10 * time.Second},
		BreakerThreshold: 4,
		BreakerCooldown:  100 * time.Millisecond,
		HedgeDelay:       25 * time.Millisecond,
		RetryBudgetRatio: 0.5,
		RetryBudgetBurst: 64,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	rt.CheckNow()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	writer := server.NewClient(front.URL, front.Client()).WithClass("critical")
	shedder := server.NewClient(front.URL, front.Client()).WithClass("sheddable")
	standard := server.NewClient(front.URL, front.Client()).WithClass("standard")

	ids := createModels(t, writer, 12)

	// The sheddable hammer targets one model on a backend that stays up
	// all soak, so shed pressure (and its counters) survive the victim
	// restart; the victim is any other backend.
	hot := ids[0]
	hotOwner := rt.ring.Owner(hot)
	victimIdx := -1
	for i, b := range backends {
		if b.url() != hotOwner {
			victimIdx = i
			break
		}
	}
	if victimIdx < 0 {
		t.Fatal("no victim candidate")
	}

	// Prime every model with one acked batch to learn its base record
	// count; from here on, WindowRecords must equal base + every acked
	// batch (the servers are synchronous, so responses are exact).
	lat := []float64{120, 240, 360, 480, 600}
	base := make(map[string]int, len(ids))
	acked := make(map[string]int, len(ids))
	for _, id := range ids {
		obs, err := writer.Observe(ctx, id, server.ObserveRequest{Latencies: lat})
		if err != nil {
			t.Fatalf("prime observe %s: %v", id, err)
		}
		base[id] = obs.WindowRecords - obs.Appended
		acked[id] = obs.Appended
	}

	var criticalSheds, sheddableSheds atomic.Int64
	var retryAfterOK atomic.Bool

	// runRound drives one quiesced burst of mixed-class traffic: a
	// single sequential critical writer over every model (so critical
	// inflight never exceeds one and a shed of it would be a real
	// admission bug), twelve sheddable readers hammering the hot model,
	// and a few standard readers roaming. Reads tolerate every injected
	// failure; only 429s are tallied.
	runRound := func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 4; pass++ {
				for _, id := range ids {
					obs, err := writer.Observe(ctx, id, server.ObserveRequest{Latencies: lat})
					if err == nil {
						acked[id] += obs.Appended
						continue
					}
					var apiErr *server.APIError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
						criticalSheds.Add(1)
					}
					// Other failures (dead owner mid-soak) are fine:
					// no ack, no accounting.
				}
			}
		}()
		for r := 0; r < 12; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 15; j++ {
					_, err := shedder.GetModel(ctx, hot, 0)
					var apiErr *server.APIError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
						sheddableSheds.Add(1)
						if apiErr.RetryAfter == time.Second {
							retryAfterOK.Store(true)
						}
					}
				}
			}()
		}
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					_, _ = standard.GetModel(ctx, ids[(seed+j)%len(ids)], 0)
				}
			}(r)
		}
		wg.Wait() // quiesce: nothing is in flight between rounds
	}

	runRound() // round 1: whole fleet

	victim := backends[victimIdx]
	victim.kill()
	rt.CheckNow()

	runRound() // round 2: victim down; its models fail over or error

	revived := startBackendCfg(t, victim.addr, victim.walDir, bcfg)
	t.Cleanup(revived.kill)
	backends[victimIdx] = revived
	rt.CheckNow()

	runRound() // round 3: whole fleet again, WAL-replayed victim

	// Convergence: every model answers through the router again. The
	// retry loop rides out the still-armed probabilistic chaos and any
	// breaker cooldown; what it must not ride out is a lost model.
	for _, id := range ids {
		ok := false
		for i := 0; i < 30 && !ok; i++ {
			if _, err := writer.GetModel(ctx, id, 0); err == nil {
				ok = true
			} else {
				time.Sleep(20 * time.Millisecond)
			}
		}
		if !ok {
			t.Fatalf("model %s never answered after recovery", id)
		}
	}

	// Zero acked loss, bit-exact: each model's window is base + acked,
	// read straight out of the owning registry (the revived victim's
	// replayed state included).
	for _, id := range ids {
		got := -1
		for _, b := range backends {
			if e, err := b.srv.Registry().Get(id); err == nil {
				got = len(e.State().Trace.Records)
				break
			}
		}
		if got != base[id]+acked[id] {
			t.Errorf("model %s: window has %d records, want base %d + acked %d",
				id, got, base[id], acked[id])
		}
	}

	if n := criticalSheds.Load(); n != 0 {
		t.Errorf("critical writer was shed %d times; admission must shed lower classes first", n)
	}
	if sheddableSheds.Load() == 0 {
		t.Error("soak produced no sheddable sheds; the gate never filled")
	}
	if !retryAfterOK.Load() {
		t.Error("no shed response carried the Retry-After: 1 contract")
	}

	// The router's stats surface saw the action: fleet-summed shed
	// counters (the hot backend never restarted, so its tallies
	// survive) and at least one hedge launched against the injected
	// latency spikes.
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var stats StatsResponse
	if err := jsonDecode(resp, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Resilience.ShedSheddable == 0 {
		t.Error("fleet stats did not sum the sheddable sheds")
	}
	if stats.Hedged == 0 {
		t.Error("no hedges launched against 50ms read stalls with a 25ms hedge delay")
	}
	for url, bs := range stats.Backends {
		if bs.Breaker == "open" {
			// Converged fleet: a still-open breaker would mean fail-fast
			// against a healthy backend.
			if !rt.breakers[url].WouldAllow() {
				t.Errorf("backend %s breaker still open after recovery", url)
			}
		}
	}
}
