// Package cluster implements the multi-node deployment of gridstratd:
// a consistent-hash ring placing model IDs onto a static set of
// backend daemons, a health checker tracking each backend's liveness
// and WAL-replay readiness, and an HTTP router that forwards
// model-scoped requests to their owner and fans multi-model queries
// out across the fleet with partial-failure reporting.
//
// The router owns no model state. Durability lives in each backend's
// write-ahead log (internal/wal); the router's job is placement —
// deterministic under a stable fleet, sticky under failures, and
// self-correcting when a backend returns and replays its models.
package cluster

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per member: 64 points per
// backend keeps the keyspace share of a 3-node fleet within a few
// percent of uniform while the ring stays tiny (hundreds of points).
const defaultVNodes = 64

// hash64 is FNV-1a 64 run through a murmur3-style finalizer. Plain
// FNV-1a is what the registry shards with, but ring placement is far
// more sensitive to clustering: vnode labels differ only in their
// numeric suffix, and FNV's multiply-only diffusion leaves their
// hashes correlated enough to skew arc lengths badly (a 3-member ring
// measured 70/17/13). The finalizer's shift-xor-multiply rounds
// restore avalanche, giving near-uniform keyspace shares.
func hash64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: a position on the hash circle owned
// by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over a static member list. It is
// immutable after construction (liveness is the health checker's
// concern, not the ring's), so lookups need no lock.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds the ring: vnodes points per member (non-positive
// falls back to the default), sorted on the hash circle. Members must
// be non-empty and unique.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{members: append([]string(nil), members...)}
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // total order even on hash collisions
	})
	return r, nil
}

// Members returns the ring's member list in construction order.
func (r *Ring) Members() []string { return r.members }

// Candidates returns the first n distinct members clockwise from the
// key's position — the key's owner followed by its failover
// successors. n is clamped to the member count.
func (r *Ring) Candidates(key string, n int) []string {
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Owner returns the key's primary owner (the first candidate).
func (r *Ring) Owner(key string) string { return r.Candidates(key, 1)[0] }
