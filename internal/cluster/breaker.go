package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// This file holds the router's per-backend resilience primitives: a
// circuit breaker (fail fast against a backend that keeps failing,
// probe it back to health), a retry budget (failover and hedging may
// not amplify an overloaded fleet's load), and a rolling latency
// tracker (the hedge delay tracks each backend's observed p95 instead
// of a guessed constant).

// errBreakerOpen is the synthetic transport error a request denied by
// an open breaker reports; the caller treats it like a connection
// failure (drop the placement, try a successor).
var errBreakerOpen = errors.New("cluster: circuit breaker open")

// breakerState is the classic three-state FSM.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker is one backend's circuit breaker. Closed admits everything
// and counts consecutive failures; threshold failures open it. Open
// denies everything until the cooldown elapses, then the next Allow
// becomes the half-open probe: exactly one request is admitted, and
// its outcome decides between closing (success) and re-opening with a
// fresh cooldown (failure).
//
// A failure is a transport-level error or a 5xx — the backend did not
// produce an answer. 4xx (including 429 shed) are the backend working
// as designed and count as success.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu          sync.Mutex
	state       breakerState
	failures    int       // consecutive, closed state only
	openedAt    time.Time // when the breaker last opened
	probing     bool      // the half-open probe is in flight
	transitions uint64    // state-change count, for /v1/stats
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// transition moves to next and counts the edge.
func (b *breaker) transition(next breakerState) {
	if b.state != next {
		b.state = next
		b.transitions++
	}
}

// WouldAllow reports whether Allow would admit a request right now,
// without consuming the half-open probe slot — the router's candidate
// selection uses it so merely *considering* a backend cannot burn its
// one probe.
func (b *breaker) WouldAllow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return b.now().Sub(b.openedAt) >= b.cooldown
	default: // half-open
		return !b.probing
	}
}

// Allow admits or denies one request. In half-open (or on the
// open→half-open edge after the cooldown) the admitted request is the
// probe: its Report decides the next state, and no other request is
// admitted until it resolves.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report feeds one admitted request's outcome back. Outcomes arriving
// in open state are from requests admitted before the trip and are
// ignored. (A request admitted closed that resolves only after the
// breaker has tripped, cooled down AND admitted a half-open probe
// would be mistaken for that probe; the cooldown is orders of
// magnitude above a request's lifetime, so the race is not handled.)
func (b *breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.transition(breakerOpen)
			b.openedAt = b.now()
		}
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.transition(breakerClosed)
			b.failures = 0
		} else {
			b.transition(breakerOpen)
			b.openedAt = b.now()
		}
	case breakerOpen:
		// late result from before the trip; ignore
	}
}

// Status snapshots the state name and transition count.
func (b *breaker) Status() (state string, transitions uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.transitions
}

// retryBudget bounds the extra load failover retries and hedges may
// add on top of primary traffic: each primary request earns ratio
// tokens (capped at burst), each retry or hedge spends one. Under a
// fleet-wide brownout the budget drains and the router degrades to
// single-attempt forwarding instead of multiplying the overload —
// exactly the failure mode the paper's resubmission-storm analysis
// warns about, applied to the router's own retries.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
}

func newRetryBudget(ratio float64, burst int) *retryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 16
	}
	// Start full so a cold router can still fail over its first
	// requests; steady state is governed by the earn rate.
	return &retryBudget{tokens: float64(burst), burst: float64(burst), ratio: ratio}
}

// earn credits one primary request.
func (rb *retryBudget) earn() {
	rb.mu.Lock()
	if rb.tokens += rb.ratio; rb.tokens > rb.burst {
		rb.tokens = rb.burst
	}
	rb.mu.Unlock()
}

// take spends one token for a retry or hedge; false means the budget
// is exhausted and the extra attempt must not be made.
func (rb *retryBudget) take() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// latencySamples is how many recent successful-request latencies the
// tracker rings over, and latencyMinSamples how many it needs before
// trusting its p95 over the cold-start default.
const (
	latencySamples    = 128
	latencyMinSamples = 16
)

// latencyTracker keeps a ring of one backend's recent successful
// request latencies and serves their p95 as the hedge delay: hedge
// only requests already slower than 95% of their peers, so ~5% extra
// load buys tail-latency cover.
type latencyTracker struct {
	mu      sync.Mutex
	samples [latencySamples]time.Duration
	n       int // total ever noted
}

func (t *latencyTracker) note(d time.Duration) {
	t.mu.Lock()
	t.samples[t.n%latencySamples] = d
	t.n++
	t.mu.Unlock()
}

// p95 returns the rolling 95th percentile; ok is false until enough
// samples have accumulated.
func (t *latencyTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < latencyMinSamples {
		return 0, false
	}
	n := t.n
	if n > latencySamples {
		n = latencySamples
	}
	buf := make([]time.Duration, n)
	copy(buf, t.samples[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(n-1)*95/100], true
}
