package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridstrat/internal/server"
)

// RouterVersion identifies the router build, reported by its healthz.
const RouterVersion = "0.7.0"

// Config tunes a Router.
type Config struct {
	// Backends is the static member list: base URLs of the gridstratd
	// daemons (e.g. "http://10.0.0.1:8372"). Required.
	Backends []string
	// VNodes is the virtual-node count per backend (default 64).
	VNodes int
	// Replicas is the candidate-list length per model ID: the owner
	// plus Replicas-1 failover successors considered when the owner is
	// down (default 3, clamped to the backend count).
	Replicas int
	// HealthInterval is the backend polling period (default 1s;
	// non-positive disables background polling — CheckNow drives it).
	HealthInterval time.Duration
	// MaxBodyBytes bounds the registration bodies the router buffers to
	// discover the model ID (default 32 MiB).
	MaxBodyBytes int64
	// Client issues the forwarded requests (default: 30 s timeout).
	Client *http.Client
	// HealthClient issues the health probes. It is deliberately
	// separate from Client: a probe against a hung (not refusing)
	// backend must fail fast, or every sweep stalls for the forwarding
	// timeout and down-detection lags far behind the poll interval
	// (default: 2 s timeout).
	HealthClient *http.Client
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker denies traffic before
	// admitting the half-open probe (default 2s).
	BreakerCooldown time.Duration
	// HedgeDelay tunes read hedging: after this long without a primary
	// response, an idempotent GET/HEAD is duplicated and the first
	// answer wins. Zero (the default) tracks each backend's rolling p95
	// latency (50ms until enough samples accumulate); negative disables
	// hedging.
	HedgeDelay time.Duration
	// RetryBudgetRatio is the retry-budget earn rate: every primary
	// request earns this many tokens and every failover retry or hedge
	// spends one, bounding the router's load amplification under a
	// fleet-wide brownout (default 0.1, i.e. ≤10% extra load at steady
	// state).
	RetryBudgetRatio float64
	// RetryBudgetBurst caps (and initially fills) the retry-budget
	// token bucket (default 16).
	RetryBudgetBurst int
	// Logger receives placement and failover lines; nil disables.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Replicas > len(c.Backends) {
		c.Replicas = len(c.Backends)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// backendCounters is one backend's router-side traffic tally.
type backendCounters struct {
	forwarded atomic.Uint64 // requests proxied to this backend
	errors    atomic.Uint64 // transport failures against it
	inflight  atomic.Int64  // currently outstanding proxied requests
}

// Router is the cluster front: it owns the ring, the health checker
// and the sticky placement table, and serves the same /v1 surface as a
// single gridstratd, transparently spread over the fleet.
type Router struct {
	cfg     Config
	ring    *Ring
	checker *Checker
	mux     *http.ServeMux
	start   time.Time

	counters map[string]*backendCounters
	breakers map[string]*breaker
	latency  map[string]*latencyTracker
	budget   *retryBudget

	hedged        atomic.Uint64 // hedge attempts launched
	hedgeWins     atomic.Uint64 // responses delivered by the hedge
	retriesDenied atomic.Uint64 // retries/hedges refused by the budget

	// placement pins a model ID to the backend serving it. An entry is
	// written on first routing and cleared on ready-state transitions:
	// when a backend goes down every placement onto it is dropped (the
	// next request picks a failover successor), and when one comes back
	// every placement whose ring owner it is is dropped (traffic moves
	// home, where the WAL replay restored the model).
	mu        sync.Mutex
	placement map[string]string
}

// NewRouter builds the router and runs one synchronous health sweep so
// the first request already sees real liveness.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	backends := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			continue
		}
		if _, err := url.Parse(b); err != nil {
			return nil, fmt.Errorf("cluster: bad backend url %q: %w", b, err)
		}
		backends = append(backends, b)
	}
	cfg.Backends = backends
	ring, err := NewRing(backends, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:       cfg,
		ring:      ring,
		start:     time.Now(),
		counters:  make(map[string]*backendCounters, len(backends)),
		breakers:  make(map[string]*breaker, len(backends)),
		latency:   make(map[string]*latencyTracker, len(backends)),
		budget:    newRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		placement: make(map[string]string),
	}
	for _, b := range backends {
		rt.counters[b] = &backendCounters{}
		rt.breakers[b] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
		rt.latency[b] = &latencyTracker{}
	}
	rt.checker = NewChecker(backends, cfg.HealthInterval, cfg.HealthClient, rt.noteTransition)
	rt.mux = http.NewServeMux()
	rt.routes()
	return rt, nil
}

// Start runs the initial health sweep and launches background polling.
func (rt *Router) Start() {
	rt.CheckNow()
	rt.checker.Start()
}

// CheckNow forces one synchronous health sweep (tests use it instead
// of waiting out the polling interval).
func (rt *Router) CheckNow() { rt.checker.CheckNow(nil) }

// Close stops the health checker.
func (rt *Router) Close() { rt.checker.Close() }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/models", rt.handleList)
	rt.mux.HandleFunc("POST /v1/models", rt.handleCreate)
	rt.mux.HandleFunc("POST /v1/batch/plan", rt.handleBatchPlan)
	// Every model-scoped route forwards to the model's owner; the
	// backend enforces methods and sub-route shapes.
	rt.mux.HandleFunc("/v1/models/{id}", rt.handleModel)
	rt.mux.HandleFunc("/v1/models/{id}/{op}", rt.handleModel)
}

// noteTransition is the checker's edge hook; see the placement field
// for the invalidation rules.
func (rt *Router) noteTransition(member string, up bool) {
	rt.mu.Lock()
	for id, m := range rt.placement {
		if (!up && m == member) || (up && rt.ring.Owner(id) == member) {
			delete(rt.placement, id)
		}
	}
	rt.mu.Unlock()
	if rt.cfg.Logger != nil {
		dir := "down"
		if up {
			dir = "up"
		}
		rt.cfg.Logger.Printf("backend %s is %s", member, dir)
	}
}

// score ranks a failover candidate from a snapshot of its live state:
// the fewer models it already serves and the fewer router requests are
// in flight against it, the better. Scored at decision time from
// observed state — not from a static assignment — so failover load
// spreads to whichever successor is actually lightest.
func (rt *Router) score(member string) float64 {
	st := rt.checker.State(member)
	return float64(st.Models) + 16*float64(rt.counters[member].inflight.Load())
}

// routable reports whether a member may receive model traffic right
// now: health-checked ready AND its circuit breaker would admit a
// request. The breaker check is the non-consuming WouldAllow — merely
// being considered as a candidate must not burn the one half-open
// probe slot; the actual Allow is consumed by send.
func (rt *Router) routable(member string) bool {
	return rt.checker.Ready(member) && rt.breakers[member].WouldAllow()
}

// ownerFor picks the backend serving a model ID: the sticky placement
// while it stays routable, else the ring owner, else the best-scoring
// routable successor among the ID's candidates. It returns "" when no
// candidate is routable.
func (rt *Router) ownerFor(id string) string {
	cands := rt.ring.Candidates(id, rt.cfg.Replicas)

	rt.mu.Lock()
	if m, ok := rt.placement[id]; ok && rt.routable(m) {
		rt.mu.Unlock()
		return m
	}
	rt.mu.Unlock()

	choice := ""
	if rt.routable(cands[0]) {
		choice = cands[0]
	} else {
		best := -1.0
		for _, m := range cands[1:] {
			if !rt.routable(m) {
				continue
			}
			if s := rt.score(m); best < 0 || s < best {
				best, choice = s, m
			}
		}
		if choice != "" && rt.cfg.Logger != nil {
			rt.cfg.Logger.Printf("model %q: owner %s not ready, failing over to %s", id, cands[0], choice)
		}
	}
	if choice != "" {
		rt.mu.Lock()
		rt.placement[id] = choice
		rt.mu.Unlock()
	}
	return choice
}

// dropPlacement removes a (failed) placement so the next request picks
// a new backend.
func (rt *Router) dropPlacement(id, member string) {
	rt.mu.Lock()
	if rt.placement[id] == member {
		delete(rt.placement, id)
	}
	rt.mu.Unlock()
}

// writeError emits the backend error envelope shape, so router-origin
// failures are indistinguishable in structure from backend ones.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// send issues one attempt of the request against the member: it
// consumes the member's breaker admission, issues the HTTP call, and
// feeds the outcome back into the breaker and (on success) the
// latency tracker. The caller owns resp.Body. A breaker denial
// surfaces as errBreakerOpen — a transport-shaped failure, so callers
// fail over exactly as they would on a refused connection.
//
// Failure, for the breaker, is a transport error or a 5xx: the
// backend did not produce an answer. 4xx (shed 429 included) is the
// backend working as designed. A transport error caused by our own
// context being cancelled (a lost hedge race, a gone client) reports
// nothing — it says nothing about the backend's health.
func (rt *Router) send(ctx context.Context, r *http.Request, member string, body []byte) (*http.Response, error) {
	br := rt.breakers[member]
	if !br.Allow() {
		return nil, errBreakerOpen
	}
	c := rt.counters[member]
	c.forwarded.Add(1)
	c.inflight.Add(1)
	defer c.inflight.Add(-1)

	u := member + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else if r.Body != nil && r.Method != http.MethodGet && r.Method != http.MethodHead {
		rd = r.Body
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	start := time.Now()
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.errors.Add(1)
			br.Report(false)
		}
		return nil, err
	}
	if resp.StatusCode >= 500 {
		br.Report(false)
	} else {
		br.Report(true)
		rt.latency[member].note(time.Since(start))
	}
	return resp, nil
}

// copyResponse streams one backend response to the client, stamped
// with which backend answered and whether the hedge delivered it.
func copyResponse(w http.ResponseWriter, resp *http.Response, member string, hedged bool) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Gridstrat-Backend", member)
	if hedged {
		w.Header().Set("X-Gridstrat-Hedged", "1")
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// proxy forwards the request (with the given body, which may be nil)
// to the member and copies the response through. It reports transport
// failure; HTTP-level errors from the backend are passed to the caller
// verbatim and count as success here.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, member string, body []byte) error {
	resp, err := rt.send(r.Context(), r, member, body)
	if err != nil {
		return err
	}
	copyResponse(w, resp, member, false)
	return nil
}

// hedgeDelay resolves the member's current hedge trigger: the fixed
// configured delay, or (in the default auto mode) the member's rolling
// p95 latency — hedge only requests already slower than 95% of their
// recent peers. Negative means hedging is off.
func (rt *Router) hedgeDelay(member string) time.Duration {
	if rt.cfg.HedgeDelay != 0 {
		return rt.cfg.HedgeDelay
	}
	if p, ok := rt.latency[member].p95(); ok {
		if p < time.Millisecond {
			p = time.Millisecond
		}
		return p
	}
	return 50 * time.Millisecond // cold-start default until samples accrue
}

// proxyHedged forwards an idempotent read, duplicating it to a second
// connection of the same member if the primary has not answered
// within the hedge delay; the first response wins and the loser is
// cancelled. The same member, deliberately: a model is single-homed,
// so a successor would only answer 404 — what the hedge covers is a
// slow *connection* (GC pause, a stalled accept queue, an injected
// latency spike), the exact per-attempt variance the paper's
// Multiple(b=2) strategy pays one extra submission to cut, applied
// here to proxied reads. Hedges spend a retry-budget token, so a
// uniformly slow fleet degrades to single attempts instead of
// doubling its own load.
func (rt *Router) proxyHedged(w http.ResponseWriter, r *http.Request, member string) error {
	delay := rt.hedgeDelay(member)
	if delay < 0 {
		return rt.proxy(w, r, member, nil)
	}
	type attempt struct {
		resp  *http.Response
		err   error
		hedge bool
		idx   int
	}
	// Each attempt owns its context: cancelling one must not abort the
	// other's in-flight body read (net/http kills Body reads when the
	// request context is cancelled, which would truncate the winner's
	// response mid-copy).
	var cancels [2]context.CancelFunc
	defer func() {
		for _, c := range cancels {
			if c != nil {
				c()
			}
		}
	}()
	ch := make(chan attempt, 2) // buffered: the loser must never block
	launch := func(idx int, hedge bool) {
		ctx, cancel := context.WithCancel(r.Context())
		cancels[idx] = cancel
		go func() {
			resp, err := rt.send(ctx, r, member, nil)
			ch <- attempt{resp, err, hedge, idx}
		}()
	}
	launch(0, false)
	pending, hedgeable := 1, true
	timer := time.NewTimer(delay)
	defer timer.Stop()

	var firstErr error
	for pending > 0 {
		select {
		case <-timer.C:
			if !hedgeable {
				continue
			}
			hedgeable = false
			if !rt.budget.take() {
				rt.retriesDenied.Add(1)
				continue
			}
			rt.hedged.Add(1)
			launch(1, true)
			pending++
		case a := <-ch:
			pending--
			if a.err != nil {
				cancels[a.idx]()
				if firstErr == nil {
					firstErr = a.err
				}
				continue
			}
			if a.hedge {
				rt.hedgeWins.Add(1)
			}
			// Cancel only the losing attempt — its send reports nothing.
			// The winner's context stays live until its body has been
			// copied through (the deferred sweep releases it then).
			for j, c := range cancels {
				if j != a.idx && c != nil {
					c()
				}
			}
			if pending > 0 {
				go func(n int) { // reap the loser's response, if any
					for i := 0; i < n; i++ {
						if la := <-ch; la.resp != nil {
							la.resp.Body.Close()
						}
					}
				}(pending)
			}
			copyResponse(w, a.resp, member, a.hedge)
			return nil
		}
	}
	return firstErr
}

// handleModel forwards a model-scoped request to its owner. A
// transport failure (an open breaker included) drops the placement
// and retries once on the next pick — if the retry budget grants it;
// idempotent reads additionally hedge inside each attempt (see
// proxyHedged). Bodyless writes answer 502 immediately (the client
// owns the retry decision for non-idempotent requests).
func (rt *Router) handleModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	isRead := r.Method == http.MethodGet || r.Method == http.MethodHead
	// Buffer small write bodies so a retried pick can resend them; a
	// model-scoped request body is a planning query, not a trace
	// upload, so this stays cheap.
	var body []byte
	if r.Body != nil && !isRead {
		buf := getProxyBuf()
		defer putProxyBuf(buf)
		if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)); err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large", err.Error())
			return
		}
		body = buf.Bytes()
	}
	rt.budget.earn()
	for attempt := 0; ; attempt++ {
		member := rt.ownerFor(id)
		if member == "" {
			writeError(w, http.StatusServiceUnavailable, "no_backend",
				fmt.Sprintf("no ready backend for model %q", id))
			return
		}
		var err error
		if isRead {
			err = rt.proxyHedged(w, r, member)
		} else {
			err = rt.proxy(w, r, member, body)
		}
		if err == nil {
			return
		}
		rt.dropPlacement(id, member)
		if attempt == 0 && (isRead || body != nil) {
			// One failover retry: safe for reads, and safe for writes
			// too because nothing was written — the transport error
			// means the request never reached a backend handler, or the
			// response never came back; observation batches are the only
			// non-idempotent case and the backend's at-most-once ack
			// contract covers a duplicated delivery no worse than a
			// client-side retry would. The retry spends a budget token:
			// under a fleet-wide brownout the budget drains and failover
			// stops amplifying the load.
			if rt.budget.take() {
				continue
			}
			rt.retriesDenied.Add(1)
		}
		writeError(w, http.StatusBadGateway, "bad_gateway",
			fmt.Sprintf("backend %s: %v", member, err))
		return
	}
}

// handleCreate routes POST /v1/models: the model ID decides the owner,
// so the router buffers the body far enough to learn it (JSON bodies
// carry it inline; raw trace uploads carry it in ?id=).
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	buf := getProxyBuf()
	defer putProxyBuf(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)); err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large", err.Error())
		return
	}
	body := buf.Bytes()
	id := r.URL.Query().Get("id")
	if id == "" {
		var probe struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &probe); err == nil {
			id = probe.ID
		}
	}
	if id == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing model id")
		return
	}
	member := rt.ownerFor(id)
	if member == "" {
		writeError(w, http.StatusServiceUnavailable, "no_backend",
			fmt.Sprintf("no ready backend for model %q", id))
		return
	}
	rt.budget.earn()
	if err := rt.proxy(w, r, member, body); err != nil {
		rt.dropPlacement(id, member)
		writeError(w, http.StatusBadGateway, "bad_gateway",
			fmt.Sprintf("backend %s: %v", member, err))
	}
}

// fanout issues one GET against every backend concurrently and
// collects the decoded bodies. Unready backends are skipped and
// reported as failed; a transport or decode failure likewise lands in
// the failed map instead of sinking the whole response.
func fanout[T any](rt *Router, r *http.Request, path string) (map[string]T, map[string]string) {
	results := make(map[string]T, len(rt.cfg.Backends))
	failed := make(map[string]string)
	// Partition before spawning anything: once a goroutine is running,
	// every write to the failed map must go through mu, including the
	// unready markers.
	var ready []string
	for _, b := range rt.cfg.Backends {
		if !rt.checker.Ready(b) {
			st := rt.checker.State(b)
			msg := st.Error
			if msg == "" {
				msg = "not ready"
			}
			failed[b] = msg
			continue
		}
		ready = append(ready, b)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range ready {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			c := rt.counters[b]
			c.forwarded.Add(1)
			c.inflight.Add(1)
			defer c.inflight.Add(-1)
			var out T
			err := rt.getJSON(r, b+path, &out)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				c.errors.Add(1)
				failed[b] = err.Error()
				return
			}
			results[b] = out
		}(b)
	}
	wg.Wait()
	return results, failed
}

// getJSON issues one GET (propagating the inbound request context) and
// decodes the 200 body.
func (rt *Router) getJSON(r *http.Request, u string, out any) error {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ListResponse is the router's GET /v1/models body: the union of every
// ready backend's models (sorted by ID), plus the partial-failure
// report. A single-node client decoding only {models} keeps working.
type ListResponse struct {
	Models  []server.ModelInfo `json:"models"`
	Partial bool               `json:"partial,omitempty"`
	Failed  map[string]string  `json:"failed_backends,omitempty"`
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	results, failed := fanout[server.ListModelsResponse](rt, r, "/v1/models")
	resp := ListResponse{Models: []server.ModelInfo{}}
	for _, lr := range results {
		resp.Models = append(resp.Models, lr.Models...)
	}
	sort.Slice(resp.Models, func(i, j int) bool { return resp.Models[i].ID < resp.Models[j].ID })
	if len(failed) > 0 {
		resp.Partial, resp.Failed = true, failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// BackendStats is one backend's slice of the router stats response.
// Breaker and BreakerTransitions are router-side (this router's
// breaker over that backend); Resilience is the backend's own
// admission/degradation counters, passed through.
type BackendStats struct {
	Healthy            bool                   `json:"healthy"`
	Ready              bool                   `json:"ready"`
	Forwarded          uint64                 `json:"forwarded"`
	Errors             uint64                 `json:"errors"`
	Breaker            string                 `json:"breaker"` // "closed", "open" or "half_open"
	BreakerTransitions uint64                 `json:"breaker_transitions"`
	Models             int                    `json:"models"`
	Totals             server.ShardStats      `json:"totals"`
	Resilience         server.ResilienceStats `json:"resilience"`
	Batch              server.BatchStats      `json:"batch"`
}

// StatsResponse is the router's GET /v1/stats body: per-backend router
// counters plus the fleet-wide sums — every backend's registry totals,
// and every backend's resilience counters (so shed-per-class and
// degraded responses are readable at one place for the whole fleet),
// plus the router's own hedging and retry-budget tallies.
type StatsResponse struct {
	UptimeS       float64                 `json:"uptime_s"`
	Models        int                     `json:"models"`
	Backends      map[string]BackendStats `json:"backends"`
	Totals        server.ShardStats       `json:"totals"`
	Resilience    server.ResilienceStats  `json:"resilience"`
	Batch         server.BatchStats       `json:"batch"`
	Hedged        uint64                  `json:"hedged_requests"`
	HedgeWins     uint64                  `json:"hedge_wins"`
	RetriesDenied uint64                  `json:"retries_denied"`
	Partial       bool                    `json:"partial,omitempty"`
	Failed        map[string]string       `json:"failed_backends,omitempty"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	results, failed := fanout[server.StatsResponse](rt, r, "/v1/stats")
	resp := StatsResponse{
		UptimeS:       time.Since(rt.start).Seconds(),
		Backends:      make(map[string]BackendStats, len(rt.cfg.Backends)),
		Hedged:        rt.hedged.Load(),
		HedgeWins:     rt.hedgeWins.Load(),
		RetriesDenied: rt.retriesDenied.Load(),
	}
	for _, b := range rt.cfg.Backends {
		st := rt.checker.State(b)
		brState, brTransitions := rt.breakers[b].Status()
		bs := BackendStats{
			Healthy:            st.Healthy,
			Ready:              st.Ready,
			Forwarded:          rt.counters[b].forwarded.Load(),
			Errors:             rt.counters[b].errors.Load(),
			Breaker:            brState,
			BreakerTransitions: brTransitions,
		}
		if sr, ok := results[b]; ok {
			bs.Models = sr.Models
			bs.Totals = sr.Totals
			bs.Resilience = sr.Resilience
			bs.Batch = sr.Batch
			resp.Models += sr.Models
			addShardStats(&resp.Totals, sr.Totals)
			server.AddResilienceStats(&resp.Resilience, sr.Resilience)
			server.AddBatchStats(&resp.Batch, sr.Batch)
		}
		resp.Backends[b] = bs
	}
	if len(failed) > 0 {
		resp.Partial, resp.Failed = true, failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// addShardStats accumulates b into a, field by field.
func addShardStats(a *server.ShardStats, b server.ShardStats) {
	a.Models += b.Models
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.IngestBatches += b.IngestBatches
	a.IngestRecords += b.IngestRecords
	a.Rebuilds += b.Rebuilds
	a.CoalescedBatches += b.CoalescedBatches
	a.RebuildFailures += b.RebuildFailures
	a.QueuedRecords += b.QueuedRecords
	a.WALAppends += b.WALAppends
	a.WALSnapshotBytes += b.WALSnapshotBytes
	a.ReplayedRecords += b.ReplayedRecords
}

// HealthResponse is the router's healthz body: "ok" when every backend
// is ready, "degraded" otherwise (the router itself stays up — a
// degraded cluster still serves the models on live backends).
type HealthResponse struct {
	Status   string                  `json:"status"`
	Version  string                  `json:"version"`
	UptimeS  float64                 `json:"uptime_s"`
	Backends map[string]BackendState `json:"backends"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := rt.checker.Snapshot()
	status := "ok"
	for _, st := range snap {
		if !(st.Healthy && st.Ready) {
			status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   status,
		Version:  RouterVersion,
		UptimeS:  time.Since(rt.start).Seconds(),
		Backends: snap,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
