package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"gridstrat/internal/server"
)

// TestRouterBatchFanout: a batch through the router is split by ring
// owner, one sub-batch per backend, and the merged response preserves
// positional order and stays bit-identical to single calls — with a
// bad item answered in place, not failing its neighbours.
func TestRouterBatchFanout(t *testing.T) {
	_, _, c := newTestCluster(t, 3)
	ctx := context.Background()
	ids := createModels(t, c, 6)

	// Interleave ops across models so every sub-batch carries a mix
	// and the positional merge is actually exercised; park an unknown
	// model in the middle.
	var items []server.BatchItem
	for _, id := range ids[:3] {
		items = append(items,
			server.BatchItem{Model: id, Op: "recommend"},
			server.BatchItem{Model: id, Op: "rank"},
		)
	}
	items = append(items, server.BatchItem{Model: "ghost", Op: "recommend"})
	for _, id := range ids[3:] {
		items = append(items, server.BatchItem{Model: id, Op: "recommend", Cheapest: true})
	}

	resp, err := c.PlanBatch(ctx, server.BatchPlanRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(items) || resp.Admitted != len(items) || resp.Shed != 0 {
		t.Fatalf("envelope: %d results, admitted %d, shed %d (want %d/%d/0)",
			len(resp.Results), resp.Admitted, resp.Shed, len(items), len(items))
	}
	for i, it := range items {
		r := resp.Results[i]
		if it.Model == "ghost" {
			if r.Error == nil || r.Error.Status != 404 || r.Error.Code != "not_found" {
				t.Fatalf("item %d (ghost): want a 404 not_found envelope, got %+v", i, r)
			}
			continue
		}
		// Positional integrity: the result must name the model the
		// item asked for, whatever backend answered it.
		var gotModel string
		switch {
		case r.Recommend != nil:
			gotModel = r.Recommend.Model
		case r.Rank != nil:
			gotModel = r.Rank.Model
		default:
			t.Fatalf("item %d (%s %s): no result: %+v", i, it.Op, it.Model, r.Error)
		}
		if gotModel != it.Model {
			t.Fatalf("item %d: merged out of order — asked %s, got %s", i, it.Model, gotModel)
		}
		// Parity with the single endpoint through the same router.
		var single any
		switch it.Op {
		case "recommend":
			s, err := c.Recommend(ctx, it.Model, server.RecommendRequest{Cheapest: it.Cheapest})
			if err != nil {
				t.Fatal(err)
			}
			single = s
		case "rank":
			s, err := c.Rank(ctx, it.Model, server.RankRequest{})
			if err != nil {
				t.Fatal(err)
			}
			single = s
		}
		var batched any = r.Recommend
		if it.Op == "rank" {
			batched = r.Rank
		}
		sj, _ := json.Marshal(single)
		bj, _ := json.Marshal(batched)
		if !bytes.Equal(sj, bj) {
			t.Fatalf("item %d (%s %s) diverges through the router:\n single: %s\n batch:  %s",
				i, it.Op, it.Model, sj, bj)
		}
	}

	// The router's /v1/stats sums the fleet's batch counters: every
	// item of the one batch shows up, whichever backends served it.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batch.Items != uint64(len(items)) || stats.Batch.Requests == 0 {
		t.Fatalf("fleet batch counters = %+v, want %d items over >=1 requests", stats.Batch, len(items))
	}
}

// TestRouterBatchAllBackendsDown: with no routable backend every item
// comes back as a per-item no_backend envelope — the batch itself
// still answers 200, mirroring the single-path 503 semantics item by
// item.
func TestRouterBatchAllBackendsDown(t *testing.T) {
	backends, rt, c := newTestCluster(t, 1)
	ctx := context.Background()
	ids := createModels(t, c, 2)
	backends[0].kill()
	rt.CheckNow()

	resp, err := c.PlanBatch(ctx, server.BatchPlanRequest{Items: []server.BatchItem{
		{Model: ids[0], Op: "recommend"},
		{Model: ids[1], Op: "rank"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Error == nil || r.Error.Status != 503 || r.Error.Code != "no_backend" {
			t.Fatalf("item %d: want a 503 no_backend envelope with the fleet down, got %+v", i, r)
		}
	}
}

// TestRouterBatchBackendDiesMidBatch: kill one backend without giving
// the health checker a chance to notice, so the first sub-batch round
// hits a live transport error. The router must re-partition that
// group's items (dropping the dead placement) and answer every item —
// successes from live owners, per-item envelopes (404 from a
// successor that never held the model, 502/503 if no candidate
// remains) for the orphaned ones. One dead backend never fails the
// batch.
func TestRouterBatchBackendDiesMidBatch(t *testing.T) {
	backends, rt, c := newTestCluster(t, 3)
	ctx := context.Background()
	ids := createModels(t, c, 8)

	// Find each model's owner so the assertion can distinguish
	// orphaned items from live ones.
	owner := map[string]string{}
	for _, id := range ids {
		owner[id] = rt.ring.Owner(id)
	}
	victim := backends[0].url()
	backends[0].kill()
	// No CheckNow: the router still believes the victim is healthy.

	var items []server.BatchItem
	for _, id := range ids {
		items = append(items, server.BatchItem{Model: id, Op: "recommend"})
	}
	resp, err := c.PlanBatch(ctx, server.BatchPlanRequest{Items: items})
	if err != nil {
		t.Fatalf("batch must survive a dead backend: %v", err)
	}
	if len(resp.Results) != len(items) {
		t.Fatalf("got %d results for %d items", len(resp.Results), len(items))
	}
	liveOK := 0
	for i, it := range items {
		r := resp.Results[i]
		if owner[it.Model] == victim {
			// Orphaned: the model's state died with its owner. The
			// item must carry an error envelope, not poison the batch.
			if r.Error == nil {
				t.Fatalf("item %d (%s, dead owner): expected an error envelope, got %+v", i, it.Model, r)
			}
			switch r.Error.Status {
			case 404, 502, 503: // successor miss / transport / unroutable
			default:
				t.Fatalf("item %d (%s, dead owner): unexpected envelope %+v", i, it.Model, r.Error)
			}
			continue
		}
		if r.Recommend == nil || r.Recommend.Model != it.Model {
			t.Fatalf("item %d (%s, live owner): %+v", i, it.Model, r)
		}
		liveOK++
	}
	if liveOK == 0 {
		t.Fatal("every model hashed to the victim; widen the model set")
	}
}
