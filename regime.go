package gridstrat

import (
	"fmt"

	"gridstrat/internal/regime"
	"gridstrat/internal/trace"
)

// --- Adversarial workload regimes ---

// RegimeKind selects one of the seeded adversarial latency regimes.
type RegimeKind = regime.Kind

// The regime taxonomy (see internal/regime for each one's semantics).
const (
	RegimeStationary RegimeKind = regime.Stationary
	RegimeHeavyTail  RegimeKind = regime.HeavyTail
	RegimeDiurnal    RegimeKind = regime.Diurnal
	RegimeSwitching  RegimeKind = regime.Switching
	RegimeOutage     RegimeKind = regime.Outage
)

// RegimeKinds returns every regime kind in declaration order.
func RegimeKinds() []RegimeKind { return regime.Kinds() }

// ParseRegimeKind maps a regime name ("stationary", "heavytail",
// "diurnal", "switching", "outage") to its kind.
func ParseRegimeKind(s string) (RegimeKind, error) { return regime.ParseKind(s) }

// RegimeSpec parameterizes one seeded regime over a dataset's
// calibrated latency law.
type RegimeSpec = regime.Spec

// RegimeProcess is an instantiated regime: the precomputed state path
// plus the latency law, shared by trace generation and grid replay.
type RegimeProcess = regime.Process

// RegimeReplayResult scores one strategy replay against a per-task
// deadline.
type RegimeReplayResult = regime.ReplayResult

// NewRegimeSpec builds the spec for a named paper dataset (e.g.
// "2006-IX") under a regime kind, with all knobs at their per-kind
// defaults. Everything downstream — trace, model, replay grid — is a
// pure function of the returned spec, so one (dataset, kind, seed)
// triple pins an entire conformance cell.
func NewRegimeSpec(dataset string, kind RegimeKind, seed uint64) (RegimeSpec, error) {
	ds, err := trace.LookupDataset(dataset)
	if err != nil {
		return RegimeSpec{}, err
	}
	return RegimeSpec{Kind: kind, Dataset: ds, Seed: seed}, nil
}

// SynthesizeRegime generates the probe trace of a regime over a named
// dataset — the adversarial counterpart of SynthesizeDataset.
func SynthesizeRegime(dataset string, kind RegimeKind, seed uint64) (*Trace, error) {
	spec, err := NewRegimeSpec(dataset, kind, seed)
	if err != nil {
		return nil, err
	}
	return spec.Trace()
}

// --- Replay conformance harness ---

// RegimeVerdict is one regime × dataset × class cell of the replay
// conformance harness: what the planner promised for the class, and
// what the seeded grid replay delivered.
type RegimeVerdict struct {
	Regime  string `json:"regime"`
	Dataset string `json:"dataset"`
	Class   string `json:"class"`
	Rec     string `json:"recommendation"`
	Diag    string `json:"diag,omitempty"` // replay diagnostics

	Deadline float64 `json:"deadline_s"`
	Target   float64 `json:"target"`
	PHit     float64 `json:"p_hit_modeled"`
	Feasible bool    `json:"feasible"` // the planner's claim
	HitRate  float64 `json:"hit_rate_replayed"`
	Tasks    int     `json:"tasks"`

	// SilentMiss is the harness failure condition: the planner claimed
	// the class SLO feasible, but the replayed hit rate fell below
	// Target − Slack. Infeasible-reported cells assert nothing — an
	// explicit miss report is the planner doing its job.
	SilentMiss bool `json:"silent_miss"`
}

// String renders a one-line verdict row.
func (v RegimeVerdict) String() string {
	claim := "infeasible"
	if v.Feasible {
		claim = "feasible"
	}
	mark := "ok"
	if v.SilentMiss {
		mark = "SILENT MISS"
	}
	return fmt.Sprintf("%-10s %-8s %-9s %-10s P=%.3f/%.2f replay=%.3f (%d tasks) %s",
		v.Regime, v.Dataset, v.Class, claim, v.PHit, v.Target, v.HitRate, v.Tasks, mark)
}

// RegimeConformanceConfig tunes one harness cell.
type RegimeConformanceConfig struct {
	// Seed is the cell's master seed; every stream (state path, trace
	// draws, replay draws, grid background) derives from it.
	Seed uint64
	// Tasks per class replay. 0 → 32.
	Tasks int
	// MaxRounds bounds strategy resubmission rounds per task. 0 → 64.
	MaxRounds int
	// Slack is subtracted from each class target before judging the
	// replayed hit rate, absorbing finite-sample noise. 0 → 0.12.
	Slack float64
	// Deadline is the critical-class deadline in seconds;
	// DefaultClassPolicies scales the other classes from it. 0 derives
	// 4× the generated trace's mean body latency.
	Deadline float64
}

func (c RegimeConformanceConfig) withDefaults() RegimeConformanceConfig {
	if c.Tasks == 0 {
		c.Tasks = 32
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 64
	}
	if c.Slack == 0 {
		c.Slack = 0.12
	}
	return c
}

// RunRegimeConformance executes one conformance cell: generate the
// regime's probe trace, fit the empirical model, plan every SLO class
// on it, then replay each class's recommended strategy against the
// seeded grid driven by the same regime state path (independent draw
// stream) and compare achieved hit rate with the planner's claim. The
// returned verdicts carry one row per class; a row with SilentMiss set
// means the planner promised an SLO the grid did not deliver.
func RunRegimeConformance(spec RegimeSpec, cfg RegimeConformanceConfig) ([]RegimeVerdict, error) {
	cfg = cfg.withDefaults()
	if cfg.Seed != 0 {
		spec.Seed = cfg.Seed
	}

	proc, err := regime.NewProcess(spec)
	if err != nil {
		return nil, err
	}
	tr, err := proc.GenerateTrace()
	if err != nil {
		return nil, err
	}
	m, err := ModelFromTrace(tr)
	if err != nil {
		return nil, err
	}
	p, err := NewPlanner(m)
	if err != nil {
		return nil, err
	}

	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = 4 * tr.ComputeStats().MeanBody
	}

	verdicts := make([]RegimeVerdict, 0, 3)
	for _, pol := range DefaultClassPolicies(deadline) {
		cr, err := p.RecommendForClass(pol)
		if err != nil {
			return nil, fmt.Errorf("%s class %s: %w", spec.Name(), pol.Class, err)
		}
		simSpec, err := SimSpec(cr.Rec.AsStrategy())
		if err != nil {
			return nil, fmt.Errorf("%s class %s: %w", spec.Name(), pol.Class, err)
		}
		res, err := proc.Replay(simSpec, cfg.Tasks, cfg.MaxRounds, 1, pol.Deadline)
		if err != nil {
			return nil, fmt.Errorf("%s class %s replay: %w", spec.Name(), pol.Class, err)
		}
		verdicts = append(verdicts, RegimeVerdict{
			Regime:   spec.Kind.String(),
			Dataset:  spec.Dataset.Name,
			Class:    pol.Class.String(),
			Rec:      cr.Rec.String(),
			Diag:     fmt.Sprintf("maxJ=%.0fs abandoned=%d", res.MaxJ, res.Outcome.TimedOutTasks),
			Deadline: pol.Deadline,
			Target:   pol.Target,
			PHit:     cr.PHit,
			Feasible: cr.Feasible,
			HitRate:  res.HitRate,
			Tasks:    res.Tasks,
			SilentMiss: cr.Feasible &&
				res.HitRate < pol.Target-cfg.Slack,
		})
	}
	return verdicts, nil
}
