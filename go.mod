module gridstrat

go 1.24
