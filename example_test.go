package gridstrat_test

import (
	"fmt"

	"gridstrat"
)

// Example shows the minimal pipeline: trace → model → optimized
// strategies. Printed values are coarse-grained so they stay stable
// across architectures (everything is deterministically seeded).
func Example() {
	tr, err := gridstrat.SynthesizeDataset("2006-IX")
	if err != nil {
		panic(err)
	}
	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		panic(err)
	}

	_, single := gridstrat.OptimizeSingle(m)
	_, multi5 := gridstrat.OptimizeMultiple(m, 5)
	_, delayed := gridstrat.OptimizeDelayed(m)

	fmt.Println("multiple(b=5) beats delayed:", multi5.EJ < delayed.EJ)
	fmt.Println("delayed beats single:", delayed.EJ < single.EJ)
	fmt.Println("delayed keeps fewer than 2 copies:", delayed.Parallel < 2)
	// Output:
	// multiple(b=5) beats delayed: true
	// delayed beats single: true
	// delayed keeps fewer than 2 copies: true
}

// ExampleNewPlanner shows the facade: one Planner per latency model,
// constraints as functional options, every high-level question a
// method.
func ExampleNewPlanner() {
	tr, _ := gridstrat.SynthesizeDataset("2006-IX")
	m, _ := gridstrat.ModelFromTrace(tr)
	planner, err := gridstrat.NewPlanner(m,
		gridstrat.WithMaxParallel(2),
		gridstrat.WithDeadline(600),
	)
	if err != nil {
		panic(err)
	}

	rec, _ := planner.Recommend()
	fmt.Println("fastest within budget:", rec.Strategy)

	ranked, _ := planner.Rank()
	fmt.Println("families ranked:", len(ranked))

	rep, _ := planner.CompareDeadline()
	fmt.Println("replication raises P(J<=600s):",
		rep.Multiple.Probability > rep.Single.Probability)
	// Output:
	// fastest within budget: multiple
	// families ranked: 3
	// replication raises P(J<=600s): true
}

// ExampleSingle_Optimize tunes one strategy family directly through
// the Strategy interface.
func ExampleSingle_Optimize() {
	tr, _ := gridstrat.SynthesizeDataset("2006-IX")
	m, _ := gridstrat.ModelFromTrace(tr)

	tuned, ev, err := gridstrat.Single{}.Optimize(m)
	if err != nil {
		panic(err)
	}
	re, _ := tuned.Evaluate(m)
	fmt.Println("tuned timeout positive:", tuned.Params().TInf > 0)
	fmt.Println("round trip agrees:", re.EJ == ev.EJ)
	// Output:
	// tuned timeout positive: true
	// round trip agrees: true
}

// ExampleRecommendCheapest reproduces the paper's §7 headline on the
// reference dataset: a delayed configuration that both finishes sooner
// and loads the grid less than single resubmission (Δcost < 1).
func ExampleRecommendCheapest() {
	tr, _ := gridstrat.SynthesizeDataset("2006-IX")
	m, _ := gridstrat.ModelFromTrace(tr)
	r, err := gridstrat.RecommendCheapest(m)
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", r.Strategy)
	fmt.Println("cheaper than doing nothing clever:", r.Delta < 1)
	// Output:
	// strategy: delayed
	// cheaper than doing nothing clever: true
}

// ExampleCompareDeadline shows the tail view of the strategies: the
// probability that a task starts before a deadline.
func ExampleCompareDeadline() {
	tr, _ := gridstrat.SynthesizeDataset("2006-IX")
	m, _ := gridstrat.ModelFromTrace(tr)
	rep, err := gridstrat.CompareDeadline(m, 600, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("replication raises P(J<=600s):",
		rep.Multiple.Probability > rep.Single.Probability)
	fmt.Println("and compresses the 95th percentile:",
		rep.Multiple.P95 < rep.Single.P95)
	// Output:
	// replication raises P(J<=600s): true
	// and compresses the 95th percentile: true
}

// ExampleEstimateMakespan sizes a latency-dominated bag-of-tasks
// application: with 5-fold submission the slowest-task tail shrinks so
// much that the whole application finishes in a fraction of the time.
func ExampleEstimateMakespan() {
	tr, _ := gridstrat.SynthesizeDataset("2006-IX")
	m, _ := gridstrat.ModelFromTrace(tr)
	app := gridstrat.Application{Tasks: 500, WaveWidth: 100, Runtime: 120}

	singleEst, _ := gridstrat.EstimateMakespan(app, gridstrat.NewSingleStrategy(m))
	multiEst, _ := gridstrat.EstimateMakespan(app, gridstrat.NewMultipleStrategy(m, 5))

	fmt.Println("waves:", app.Waves())
	fmt.Println("b=5 at least 2x faster:", multiEst.Makespan*2 < singleEst.Makespan)
	// Output:
	// waves: 5
	// b=5 at least 2x faster: true
}
