package gridstrat

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestWithParallelismValidation(t *testing.T) {
	m := refModel(t)
	for _, bad := range []int{0, -1, -100} {
		if _, err := NewPlanner(m, WithParallelism(bad)); err == nil {
			t.Fatalf("WithParallelism(%d) should fail", bad)
		}
	}
	for _, good := range []int{1, 2, 64} {
		if _, err := NewPlanner(m, WithParallelism(good)); err != nil {
			t.Fatalf("WithParallelism(%d): %v", good, err)
		}
	}
}

// TestPlannerParallelismInvariantQueries pins the determinism contract
// of the execution engine on the analytic path: every Planner query
// returns identical results at parallelism 1 and 8.
func TestPlannerParallelismInvariantQueries(t *testing.T) {
	if raceEnabled {
		t.Skip("determinism is asserted without -race; TestPlannerConcurrentUse carries the race coverage")
	}
	m := refModel(t)
	seq, err := NewPlanner(m, WithParallelism(1), WithDeadline(900))
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewPlanner(m, WithParallelism(8), WithDeadline(900))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := seq.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	r8, err := par.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r8 {
		t.Fatalf("Recommend: parallelism 1 gave %+v, 8 gave %+v", r1, r8)
	}
	c1, err := seq.RecommendCheapest()
	if err != nil {
		t.Fatal(err)
	}
	c8, err := par.RecommendCheapest()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c8 {
		t.Fatalf("RecommendCheapest: %+v vs %+v", c1, c8)
	}
	d1, err := seq.CompareDeadline()
	if err != nil {
		t.Fatal(err)
	}
	d8, err := par.CompareDeadline()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d8 {
		t.Fatalf("CompareDeadline: %+v vs %+v", d1, d8)
	}
}

// TestPlannerSimulateDeterministicAcrossParallelism pins the sharded
// Monte Carlo contract at the public surface: two Planners with the
// same seed, one sequential and one 8-way parallel, produce
// bit-identical simulation results.
func TestPlannerSimulateDeterministicAcrossParallelism(t *testing.T) {
	m := refModel(t)
	const runs = 20000
	strategies := []Strategy{
		Single{TInf: 500},
		Multiple{B: 3, TInf: 600},
		Delayed{T0: 339, TInf: 485},
	}
	for _, s := range strategies {
		seq, err := NewPlanner(m, WithParallelism(1), WithRand(rand.New(rand.NewSource(42))))
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewPlanner(m, WithParallelism(8), WithRand(rand.New(rand.NewSource(42))))
		if err != nil {
			t.Fatal(err)
		}
		want, err := seq.Simulate(s, runs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Simulate(s, runs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: parallelism 8 gave %+v, want %+v", s, got, want)
		}
		if math.IsNaN(want.EJ) || want.EJ <= 0 {
			t.Fatalf("%v: degenerate simulation %+v", s, want)
		}
	}
}

// TestPlannerConcurrentUse races Recommend, Rank, Simulate, Optimize
// and CompareDeadline against each other on one shared Planner — the
// concurrency contract `go test -race` must hold now that the memo
// cache and the rng draw are hit from worker pools.
func TestPlannerConcurrentUse(t *testing.T) {
	m := refModel(t)
	p, err := NewPlanner(m, WithParallelism(4), WithDeadline(900))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for i := 0; i < 4; i++ {
		wg.Add(5)
		go func() {
			defer wg.Done()
			_, err := p.Recommend()
			errc <- err
		}()
		go func() {
			defer wg.Done()
			_, err := p.Rank()
			errc <- err
		}()
		go func() {
			defer wg.Done()
			_, err := p.Simulate(Multiple{B: 2, TInf: 600}, 8000)
			errc <- err
		}()
		go func() {
			defer wg.Done()
			_, _, err := p.Optimize(Single{})
			errc <- err
		}()
		go func() {
			defer wg.Done()
			_, err := p.CompareDeadline()
			errc <- err
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMemoCacheRejectsNaN pins the cache-boundary fix: NaN queries
// bypass the memo maps (NaN != NaN could never hit and would grow them
// unboundedly).
func TestMemoCacheRejectsNaN(t *testing.T) {
	m := refModel(t)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	mm, ok := p.Model().(*memoModel)
	if !ok {
		t.Fatalf("Planner model is %T, want *memoModel", p.Model())
	}
	nan := math.NaN()
	for i := 0; i < 100; i++ {
		mm.Ftilde(nan)
		mm.IntOneMinusFPow(nan, 2)
		mm.IntUOneMinusFPow(nan, 2)
		mm.IntProdOneMinusF(nan, 100)
		mm.IntProdOneMinusF(100, nan)
		mm.IntUProdOneMinusF(nan, nan)
	}
	mm.mu.Lock()
	total := len(mm.ftilde) + len(mm.pow) + len(mm.upow) + len(mm.prod) + len(mm.uprod)
	mm.mu.Unlock()
	if total != 0 {
		t.Fatalf("NaN queries grew the memo cache to %d entries", total)
	}
	// Sanity: non-NaN queries still populate and hit the cache.
	v1 := mm.Ftilde(500)
	v2 := mm.Ftilde(500)
	if v1 != v2 {
		t.Fatalf("cache returned different values %v vs %v", v1, v2)
	}
	mm.mu.Lock()
	n := len(mm.ftilde)
	mm.mu.Unlock()
	if n != 1 {
		t.Fatalf("expected exactly one cached Ftilde entry, got %d", n)
	}
}
