package gridstrat

import (
	"encoding/json"
	"os"
	"sync"
	"testing"

	"gridstrat/internal/trace"
)

// regimeMasterSeed pins the whole conformance matrix: every stream in
// every cell — regime state path, trace draws, replay draws, grid
// background — derives from it, so the matrix is bit-reproducible.
const regimeMasterSeed = 20090611

// regimeShortDatasets is the -short subset: the densest trace of each
// campaign era.
var regimeShortDatasets = []string{"2006-IX", "2007-51", "2007-36", "2008-02"}

// TestRegimeReplayConformance is the closing harness of the regime
// subsystem: for every regime × dataset cell it generates the regime's
// probe trace, fits the planner on it, asks for a per-class
// recommendation, replays that recommendation through the event-driven
// grid simulator against the same seeded regime, and requires that
// every class either met its SLO in replay (within slack) or was
// explicitly reported infeasible by the planner. A silent miss — the
// planner claiming feasibility the grid did not deliver — fails the
// cell.
func TestRegimeReplayConformance(t *testing.T) {
	datasets := make([]string, 0, len(trace.PaperDatasets))
	if testing.Short() {
		datasets = append(datasets, regimeShortDatasets...)
	} else {
		for _, ds := range trace.PaperDatasets {
			datasets = append(datasets, ds.Name)
		}
	}

	var (
		tableMu sync.Mutex
		table   []RegimeVerdict
	)
	for _, kind := range RegimeKinds() {
		for _, name := range datasets {
			kind, name := kind, name
			t.Run(kind.String()+"/"+name, func(t *testing.T) {
				t.Parallel()
				spec, err := NewRegimeSpec(name, kind, regimeMasterSeed)
				if err != nil {
					t.Fatalf("NewRegimeSpec: %v", err)
				}
				verdicts, err := RunRegimeConformance(spec, RegimeConformanceConfig{})
				if err != nil {
					t.Fatalf("RunRegimeConformance: %v", err)
				}
				if len(verdicts) != len(SLOClasses()) {
					t.Fatalf("got %d verdicts, want one per class (%d)", len(verdicts), len(SLOClasses()))
				}
				for _, v := range verdicts {
					t.Log(v)
					if v.SilentMiss {
						t.Errorf("silent SLO miss: planner claimed class %s feasible (P=%.3f >= %.2f) but replay hit rate was %.3f",
							v.Class, v.PHit, v.Target, v.HitRate)
					}
					if !v.Feasible && v.PHit >= v.Target {
						t.Errorf("class %s: infeasible verdict with modeled P=%.3f >= target %.2f", v.Class, v.PHit, v.Target)
					}
					if v.Tasks == 0 {
						t.Errorf("class %s: replay ran zero tasks", v.Class)
					}
				}
				tableMu.Lock()
				table = append(table, verdicts...)
				tableMu.Unlock()
			})
		}
	}

	// CI artifact: the full verdict table as JSON when requested.
	t.Cleanup(func() {
		out := os.Getenv("GRIDSTRAT_REGIME_OUT")
		if out == "" || t.Failed() {
			return
		}
		buf, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			t.Errorf("marshal verdict table: %v", err)
			return
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Errorf("write verdict table: %v", err)
		}
	})
}

// TestRegimeConformanceReportsInfeasible drives the harness into a
// deadline no strategy can meet — below the latency floor, nothing
// ever completes in time — and requires the planner to say so rather
// than promise the impossible.
func TestRegimeConformanceReportsInfeasible(t *testing.T) {
	spec, err := NewRegimeSpec("2007-51", RegimeSwitching, regimeMasterSeed)
	if err != nil {
		t.Fatalf("NewRegimeSpec: %v", err)
	}
	verdicts, err := RunRegimeConformance(spec, RegimeConformanceConfig{
		Deadline: trace.LatencyFloor - 20, // unreachable: below every possible latency
	})
	if err != nil {
		t.Fatalf("RunRegimeConformance: %v", err)
	}
	// The critical class (deadline = base) can never be met; looser
	// classes (2x, 4x base) may or may not be. At minimum the critical
	// verdict must be an explicit infeasibility, never a silent miss.
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	crit := verdicts[0]
	if crit.Class != ClassCritical.String() {
		t.Fatalf("first verdict is %s, want critical", crit.Class)
	}
	if crit.Feasible {
		t.Errorf("critical class with sub-floor deadline reported feasible (P=%.3f)", crit.PHit)
	}
	if crit.PHit != 0 {
		t.Errorf("modeled P(J <= %v) = %.3f, want 0 below the latency floor", crit.Deadline, crit.PHit)
	}
	for _, v := range verdicts {
		t.Log(v)
		if v.SilentMiss {
			t.Errorf("class %s: silent miss under unreachable deadline", v.Class)
		}
	}
}

// TestRegimeConformanceDeterminism reruns one full cell and requires
// verdict-for-verdict identical output: the harness is a pure function
// of (dataset, kind, seed).
func TestRegimeConformanceDeterminism(t *testing.T) {
	spec, err := NewRegimeSpec("2008-01", RegimeOutage, regimeMasterSeed)
	if err != nil {
		t.Fatalf("NewRegimeSpec: %v", err)
	}
	run := func() []RegimeVerdict {
		v, err := RunRegimeConformance(spec, RegimeConformanceConfig{})
		if err != nil {
			t.Fatalf("RunRegimeConformance: %v", err)
		}
		return v
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("two runs of the same cell diverged:\n%s\n%s", aj, bj)
	}
}
