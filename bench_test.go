package gridstrat

// The benchmark harness regenerates every table and figure of the
// paper (Tables 1–6, Figures 1–8): `go test -bench=.` re-derives the
// full evaluation from the calibrated synthetic traces. Ablation
// benches at the bottom quantify the design choices called out in
// DESIGN.md (exact step integrals vs Monte Carlo, exact delayed law vs
// the paper's CDF formulas, optimizer variants).

import (
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"gridstrat/internal/core"
	"gridstrat/internal/experiments"
	"gridstrat/internal/optimize"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		c, err := experiments.NewContext()
		if err != nil {
			b.Fatal(err)
		}
		benchCtx = c
	})
	return benchCtx
}

func benchModel(b *testing.B) *EmpiricalModel {
	b.Helper()
	m, err := benchContext(b).Model(experiments.ReferenceDataset)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- One benchmark per paper artifact ---

func BenchmarkTable1(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAll regenerates the complete evaluation end to end with
// the parallel harness (all cores) — the product path of cmd/repro.
func BenchmarkRunAll(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(c, io.Discard, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllSequential is the workers = 1 baseline the perf
// trajectory (BENCH_PR2.json) compares the parallel harness against.
func BenchmarkRunAllSequential(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(c, io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// BenchmarkAblationEJSingleExact measures the exact step-function
// evaluation of Eq. 1 on the empirical model.
func BenchmarkAblationEJSingleExact(b *testing.B) {
	m := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EJSingle(m, 500)
	}
}

// BenchmarkAblationEJSingleMonteCarlo is the Monte Carlo alternative
// at 10k runs — the accuracy/cost trade-off the exact integrals avoid.
func BenchmarkAblationEJSingleMonteCarlo(b *testing.B) {
	m := benchModel(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateSingle(m, 500, 10000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDelayedExact evaluates the exact geometric-series
// closed form of the delayed expectation.
func BenchmarkAblationDelayedExact(b *testing.B) {
	m := benchModel(b)
	p := DelayedParams{T0: 339, TInf: 485}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EJDelayed(m, p)
	}
}

// BenchmarkAblationDelayedPaperCDF evaluates the paper's own interval
// formulas for FJ on a grid (the Eq. 5 route).
func BenchmarkAblationDelayedPaperCDF(b *testing.B) {
	m := benchModel(b)
	p := DelayedParams{T0: 339, TInf: 485}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EJDelayedPaper(m, p)
	}
}

// BenchmarkAblationDelayedMonteCarlo replays the delayed strategy at
// 10k runs.
func BenchmarkAblationDelayedMonteCarlo(b *testing.B) {
	m := benchModel(b)
	p := DelayedParams{T0: 339, TInf: 485}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDelayed(m, p, 10000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNParallel measures the exact-mass Stieltjes
// evaluation of E[N‖].
func BenchmarkAblationNParallel(b *testing.B) {
	m := benchModel(b)
	p := DelayedParams{T0: 339, TInf: 485}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NParallelExpected(m, p)
	}
}

// Optimizer ablation: grid scan vs golden section vs Brent on the
// single-resubmission objective.
func BenchmarkAblationOptimizerGridScan(b *testing.B) {
	m := benchModel(b)
	obj := func(t float64) float64 { return EJSingle(m, t) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimize.GridScan1D(obj, 1, m.UpperBound(), 400, 4)
	}
}

func BenchmarkAblationOptimizerGolden(b *testing.B) {
	m := benchModel(b)
	obj := func(t float64) float64 { return EJSingle(m, t) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimize.GoldenSection(obj, 1, m.UpperBound(), 1e-3)
	}
}

func BenchmarkAblationOptimizerBrent(b *testing.B) {
	m := benchModel(b)
	obj := func(t float64) float64 { return EJSingle(m, t) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimize.Brent(obj, 1, m.UpperBound(), 1e-6)
	}
}

// BenchmarkAblationCostOptimization measures the full Δcost
// minimization (the Table 5 per-week workload).
func BenchmarkAblationCostOptimization(b *testing.B) {
	m := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc, err := NewCostContext(m)
		if err != nil {
			b.Fatal(err)
		}
		cc.OptimizeDelayedCost()
	}
}

// BenchmarkAblationMonteCarloWorkers runs one large multiple-
// submission replay sequentially and on all cores: the sharded-
// simulator speedup ablation (results are bit-identical either way).
func BenchmarkAblationMonteCarloWorkers(b *testing.B) {
	m := benchModel(b)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if _, err := core.SimulateMultipleCtx(context.Background(), m, 3, 600, 200000, rng, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMonteCarloSampleSize sweeps the MC budget to show
// the error/cost trade-off against the exact value.
func BenchmarkAblationMonteCarloSampleSize(b *testing.B) {
	m := benchModel(b)
	for _, runs := range []int{1000, 10000, 100000} {
		runs := runs
		b.Run(itoa(runs), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if _, err := SimulateMultiple(m, 3, 600, runs, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	switch v {
	case 1000:
		return "1k"
	case 10000:
		return "10k"
	case 100000:
		return "100k"
	}
	return "n"
}
