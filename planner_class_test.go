package gridstrat

import (
	"strings"
	"testing"
)

func classTestPlanner(t *testing.T) *Planner {
	t.Helper()
	tr, err := SynthesizeDataset("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecommendForClassFeasible(t *testing.T) {
	p := classTestPlanner(t)
	// A loose deadline every strategy can hit: the pick must be
	// feasible and respect the class budgets.
	pol := ClassPolicy{Class: ClassStandard, Deadline: 50000, Target: 0.85, MaxParallel: 2, Budget: 3}
	cr, err := p.RecommendForClass(pol)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Feasible {
		t.Fatalf("loose deadline infeasible: %v", cr)
	}
	if cr.PHit < pol.Target {
		t.Errorf("feasible with PHit %.3f < target %.2f", cr.PHit, pol.Target)
	}
	if cr.Rec.Eval.Parallel > pol.MaxParallel {
		t.Errorf("recommendation burns %.2f parallel copies, budget %.1f", cr.Rec.Eval.Parallel, pol.MaxParallel)
	}
	if pol.Budget > 0 && cr.Rec.Delta > pol.Budget {
		t.Errorf("recommendation Δcost %.2f over budget %.2f", cr.Rec.Delta, pol.Budget)
	}
	if !strings.Contains(cr.String(), "meets SLO") {
		t.Errorf("String() = %q, want SLO verdict", cr.String())
	}
}

func TestRecommendForClassInfeasibleIsExplicit(t *testing.T) {
	p := classTestPlanner(t)
	// Below the latency floor nothing can complete: the planner must
	// report infeasibility with its closest miss, never claim success.
	pol := ClassPolicy{Class: ClassCritical, Deadline: 50, Target: 0.9, MaxParallel: 5}
	cr, err := p.RecommendForClass(pol)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Feasible {
		t.Fatalf("sub-floor deadline reported feasible: %v", cr)
	}
	if cr.PHit != 0 {
		t.Errorf("modeled PHit %.3f, want 0 below the floor", cr.PHit)
	}
	if !strings.Contains(cr.String(), "INFEASIBLE") {
		t.Errorf("String() = %q, want INFEASIBLE verdict", cr.String())
	}
}

func TestRecommendForClassTighterBudgetNeverBeatsLooser(t *testing.T) {
	p := classTestPlanner(t)
	loose := ClassPolicy{Class: ClassCritical, Deadline: 2000, Target: 0.9, MaxParallel: 5}
	tight := loose
	tight.Class = ClassSheddable
	tight.MaxParallel = 1
	crLoose, err := p.RecommendForClass(loose)
	if err != nil {
		t.Fatal(err)
	}
	crTight, err := p.RecommendForClass(tight)
	if err != nil {
		t.Fatal(err)
	}
	if crTight.PHit > crLoose.PHit+1e-9 {
		t.Errorf("single-copy budget got PHit %.3f above 5-copy budget's %.3f", crTight.PHit, crLoose.PHit)
	}
	if crTight.Rec.Eval.Parallel > 1 {
		t.Errorf("sheddable recommendation uses %.2f parallel copies", crTight.Rec.Eval.Parallel)
	}
}

func TestRecommendForClassesOrderAndValidation(t *testing.T) {
	p := classTestPlanner(t)
	crs, err := p.RecommendForClasses(DefaultClassPolicies(4000))
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != 3 {
		t.Fatalf("got %d recommendations", len(crs))
	}
	for i, want := range SLOClasses() {
		if crs[i].Policy.Class != want {
			t.Errorf("recommendation %d for class %s, want %s (input order)", i, crs[i].Policy.Class, want)
		}
	}
	if _, err := p.RecommendForClass(ClassPolicy{Class: ClassCritical, Deadline: -1, Target: 0.9, MaxParallel: 2}); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestPlanClassesMatchesWorkloadPlanner(t *testing.T) {
	p := classTestPlanner(t)
	app := Application{Tasks: 40, WaveWidth: 10, Runtime: 60}
	demands := []ClassDemand{
		{Policy: ClassPolicy{Class: ClassCritical, Deadline: 1e6, Target: 0.9, MaxParallel: 4}, App: app},
		{Policy: ClassPolicy{Class: ClassSheddable, Deadline: 1e6, Target: 0.75, MaxParallel: 1}, App: app},
	}
	allocs, left, err := p.PlanClasses(demands, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 || allocs[0].Class != ClassCritical {
		t.Fatalf("unexpected allocations %+v", allocs)
	}
	want, wantLeft, err := SmallestMeetingDeadlineByClass(p.Model(), demands, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if left != wantLeft || len(allocs) != len(want) {
		t.Fatalf("PlanClasses diverges from workload planner: left %v vs %v", left, wantLeft)
	}
	for i := range want {
		if allocs[i] != want[i] {
			t.Errorf("allocation %d: %+v vs %+v", i, allocs[i], want[i])
		}
	}
}
