//go:build !race

package gridstrat

// raceEnabled reports whether the race detector is compiled in. The
// race build trades coverage breadth for time on the heaviest tests
// (the per-dataset pinning loop) so `go test -race ./...` fits the
// default per-package timeout; the full breadth runs without -race.
const raceEnabled = false
