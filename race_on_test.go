//go:build race

package gridstrat

// See race_off_test.go.
const raceEnabled = true
