// Weeklytuning: the paper's §7.2 practical deployment loop.
//
// Optimal (t0, t∞) values can only be computed from measurements that
// exist *before* the jobs run. This example replays the paper's
// answer: each week, reuse the parameters tuned on the previous week's
// trace, and compare the Δcost you actually get against the week's own
// (unknowable in advance) optimum. One Planner per week carries the
// cost baseline; Planner.Cost prices last week's parameters on this
// week's model.
package main

import (
	"fmt"
	"log"

	"gridstrat"
)

func main() {
	weeks := []string{
		"2007-36", "2007-37", "2007-38", "2007-39", "2007-50",
		"2007-51", "2007-52", "2007-53", "2008-01", "2008-02", "2008-03",
	}

	type tuned struct {
		strategy gridstrat.Strategy
		week     string
	}
	var prev *tuned

	fmt.Printf("%-9s %18s %22s %10s %10s %8s\n",
		"week", "params source", "strategy", "Δ applied", "Δ optimal", "penalty")
	for _, week := range weeks {
		tr, err := gridstrat.SynthesizeDataset(week)
		if err != nil {
			log.Fatal(err)
		}
		m, err := gridstrat.ModelFromTrace(tr)
		if err != nil {
			log.Fatal(err)
		}
		planner, err := gridstrat.NewPlanner(m)
		if err != nil {
			log.Fatal(err)
		}
		// This week's own optimum — computable only in hindsight.
		own, err := planner.RecommendCheapest()
		if err != nil {
			log.Fatal(err)
		}

		if prev == nil {
			fmt.Printf("%-9s %18s %22v %10s %10.3f %8s\n",
				week, "(first week)", own.AsStrategy(), "-", own.Delta, "-")
		} else {
			_, applied, err := planner.Cost(prev.strategy)
			if err != nil {
				log.Fatal(err)
			}
			penalty := (applied - own.Delta) / own.Delta
			fmt.Printf("%-9s %18s %22v %10.3f %10.3f %+7.1f%%\n",
				week, prev.week, prev.strategy, applied, own.Delta, penalty*100)
		}
		prev = &tuned{strategy: own.AsStrategy(), week: week}
	}
	fmt.Println("\nthe penalty column is the price of tuning on last week's data —")
	fmt.Println("the paper reports ≤6% on EGEE; small values justify the online deployment mode.")
}
