// Weeklytuning: the paper's §7.2 practical deployment loop.
//
// Optimal (t0, t∞) values can only be computed from measurements that
// exist *before* the jobs run. This example replays the paper's
// answer: each week, reuse the parameters tuned on the previous week's
// trace, and compare the Δcost you actually get against the week's own
// (unknowable in advance) optimum.
package main

import (
	"fmt"
	"log"

	"gridstrat"
)

func main() {
	weeks := []string{
		"2007-36", "2007-37", "2007-38", "2007-39", "2007-50",
		"2007-51", "2007-52", "2007-53", "2008-01", "2008-02", "2008-03",
	}

	type tuned struct {
		params gridstrat.DelayedParams
		week   string
	}
	var prev *tuned

	fmt.Printf("%-9s %18s %18s %10s %10s %8s\n",
		"week", "params source", "(t0, t∞)", "Δ applied", "Δ optimal", "penalty")
	for _, week := range weeks {
		tr, err := gridstrat.SynthesizeDataset(week)
		if err != nil {
			log.Fatal(err)
		}
		m, err := gridstrat.ModelFromTrace(tr)
		if err != nil {
			log.Fatal(err)
		}
		cc, err := gridstrat.NewCostContext(m)
		if err != nil {
			log.Fatal(err)
		}
		// This week's own optimum — computable only in hindsight.
		own := cc.OptimizeDelayedCost()

		if prev == nil {
			fmt.Printf("%-9s %18s %7.0fs,%6.0fs %10s %10.3f %8s\n",
				week, "(first week)", own.Params.T0, own.Params.TInf, "-", own.Delta, "-")
		} else {
			_, applied, err := cc.DeltaDelayed(prev.params)
			if err != nil {
				log.Fatal(err)
			}
			penalty := (applied - own.Delta) / own.Delta
			fmt.Printf("%-9s %18s %7.0fs,%6.0fs %10.3f %10.3f %+7.1f%%\n",
				week, prev.week, prev.params.T0, prev.params.TInf, applied, own.Delta, penalty*100)
		}
		prev = &tuned{params: own.Params, week: week}
	}
	fmt.Println("\nthe penalty column is the price of tuning on last week's data —")
	fmt.Println("the paper reports ≤6% on EGEE; small values justify the online deployment mode.")
}
