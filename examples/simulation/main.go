// Simulation: close the loop between the analytic strategy models and
// a live discrete-event grid.
//
// The program (1) runs a probe campaign against the simulated grid to
// measure its latency law, (2) optimizes the three strategies on the
// fitted model through the Strategy API, and (3) replays each optimized
// strategy against the *live* grid, comparing realized mean latency
// with the model's prediction. Disagreement stays small as long as the
// grid is stationary over the experiment — exactly the assumption the
// paper makes (and revisits in its §7.2 stability study).
package main

import (
	"fmt"
	"log"

	"gridstrat"
	"gridstrat/internal/gridsim"
)

func main() {
	g, err := gridstrat.NewGrid(gridstrat.DefaultGrid(24, 20090611))
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: measure.
	tr, err := gridstrat.RunProbes(g, gridstrat.DefaultProbeConfig(1500), "live")
	if err != nil {
		log.Fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("probe campaign: mean=%.0fs σ=%.0fs rho=%.3f (%.1f simulated days)\n\n",
		st.MeanBody, st.StdBody, st.Rho, g.Engine.Now()/86400)

	// Phase 2: model and optimize each strategy family.
	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := gridstrat.NewPlanner(m)
	if err != nil {
		log.Fatal(err)
	}
	single, evS, err := planner.Optimize(gridstrat.Single{})
	if err != nil {
		log.Fatal(err)
	}
	multi, evM, err := planner.Optimize(gridstrat.Multiple{B: 3})
	if err != nil {
		log.Fatal(err)
	}
	delayed, evD, err := planner.Optimize(gridstrat.Delayed{})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 3: replay against the live grid.
	const tasks = 150
	pd := delayed.(gridstrat.Delayed).DelayedParams()
	specs := []struct {
		strategy  gridstrat.Strategy
		spec      gridsim.StrategySpec
		predicted float64
	}{
		{single, gridsim.StrategySpec{Kind: gridsim.StrategySingle, TInf: single.Params().TInf}, evS.EJ},
		{multi, gridsim.StrategySpec{Kind: gridsim.StrategyMultiple, TInf: multi.Params().TInf, B: 3}, evM.EJ},
		{delayed, gridsim.StrategySpec{Kind: gridsim.StrategyDelayed, Delayed: pd}, evD.EJ},
	}
	fmt.Printf("%-9s %12s %12s %10s %12s %8s\n",
		"strategy", "model EJ", "realized J", "gap", "subs/task", "N‖")
	for _, s := range specs {
		out, err := gridsim.RunStrategy(g, s.spec, tasks, 300, 1)
		if err != nil {
			log.Fatal(err)
		}
		gap := (out.MeanJ - s.predicted) / s.predicted
		fmt.Printf("%-9s %11.0fs %11.0fs %+9.1f%% %12.2f %8.2f\n",
			s.strategy.Name(), s.predicted, out.MeanJ, gap*100, out.MeanSubmissions, out.MeanParallel)
	}
	fmt.Println("\ngaps reflect grid non-stationarity between the probe campaign and the replay —")
	fmt.Println("the client-side models otherwise transfer directly to the live system.")
}
