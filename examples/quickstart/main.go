// Quickstart: build a latency model from a probe trace and compare the
// three submission strategies of the paper.
package main

import (
	"fmt"
	"log"

	"gridstrat"
)

func main() {
	// 1. Get a probe trace. Here: the synthetic reproduction of the
	// paper's 2006-IX EGEE campaign; in production this would be your
	// own probe measurements loaded with gridstrat.ReadTraceCSV.
	tr, err := gridstrat.SynthesizeDataset("2006-IX")
	if err != nil {
		log.Fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("trace %s: %d probes, mean latency %.0fs (σ=%.0fs), %.1f%% outliers\n\n",
		st.Name, st.Probes, st.MeanBody, st.StdBody, st.Rho*100)

	// 2. Build the latency model F̃R(t) = (1-ρ)·FR(t).
	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Optimize each strategy.
	tInf, single := gridstrat.OptimizeSingle(m)
	fmt.Printf("single resubmission:  t∞=%4.0fs            EJ=%.0fs σ=%.0fs\n",
		tInf, single.EJ, single.Sigma)

	for _, b := range []int{2, 5} {
		tb, ev := gridstrat.OptimizeMultiple(m, b)
		fmt.Printf("multiple (b=%d):       t∞=%4.0fs            EJ=%.0fs σ=%.0fs\n",
			b, tb, ev.EJ, ev.Sigma)
	}

	p, delayed := gridstrat.OptimizeDelayed(m)
	fmt.Printf("delayed resubmission: t0=%4.0fs t∞=%4.0fs  EJ=%.0fs σ=%.0fs N‖=%.2f\n\n",
		p.T0, p.TInf, delayed.EJ, delayed.Sigma, delayed.Parallel)

	// 4. Ask the advisor: fastest under a 1.5-copy budget, and
	// cheapest for the infrastructure.
	fast, err := gridstrat.Recommend(m, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	cheap, err := gridstrat.RecommendCheapest(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fastest under N‖ ≤ 1.5: ", fast)
	fmt.Println("cheapest for the grid:  ", cheap)
}
