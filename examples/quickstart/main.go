// Quickstart: build a latency model from a probe trace and compare the
// three submission strategies of the paper through the Planner facade.
package main

import (
	"fmt"
	"log"

	"gridstrat"
)

func main() {
	// 1. Get a probe trace. Here: the synthetic reproduction of the
	// paper's 2006-IX EGEE campaign; in production this would be your
	// own probe measurements loaded with gridstrat.ReadTraceCSV.
	tr, err := gridstrat.SynthesizeDataset("2006-IX")
	if err != nil {
		log.Fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("trace %s: %d probes, mean latency %.0fs (σ=%.0fs), %.1f%% outliers\n\n",
		st.Name, st.Probes, st.MeanBody, st.StdBody, st.Rho*100)

	// 2. Build the latency model F̃R(t) = (1-ρ)·FR(t) and a Planner
	// over it. The Planner memoizes model evaluations, so the ranking,
	// recommendation and cost queries below share their work.
	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := gridstrat.NewPlanner(m, gridstrat.WithMaxParallel(1.5))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Optimize each strategy family and rank by expected latency.
	ranked, err := planner.Rank(
		gridstrat.Single{},
		gridstrat.Multiple{B: 2},
		gridstrat.Multiple{B: 5},
		gridstrat.Delayed{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10s %10s %8s %8s\n", "strategy", "EJ", "σJ", "N‖", "Δcost")
	for _, r := range ranked {
		fmt.Printf("%-28v %9.0fs %9.0fs %8.2f %8.2f\n",
			r.Strategy, r.Eval.EJ, r.Eval.Sigma, r.Eval.Parallel, r.Delta)
	}

	// 4. Ask the advisor: fastest under a 1.5-copy budget, and
	// cheapest for the infrastructure.
	fast, err := planner.Recommend()
	if err != nil {
		log.Fatal(err)
	}
	cheap, err := planner.RecommendCheapest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfastest under N‖ ≤ 1.5: ", fast)
	fmt.Println("cheapest for the grid:  ", cheap)

	// 5. Cross-check the winner with a Monte Carlo replay.
	sim, err := planner.Simulate(fast.AsStrategy(), 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte Carlo check: EJ=%.0fs ± %.1fs (model said %.0fs)\n",
		sim.EJ, sim.StdErr, fast.Eval.EJ)
}
