// Service: the §7.2 deployment loop as a live planning service.
//
// This example starts the gridstratd HTTP server in-process, uploads
// a GWF probe trace to seed a model with a rolling window, asks for a
// recommendation, then streams observation batches from a drifting
// latency regime — watching the recommended strategy re-tune as fresh
// probes push stale ones out of the window. It is the programmatic
// twin of the curl walkthrough in README.md.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"gridstrat"
	"gridstrat/internal/server"
)

func main() {
	// 1. An in-process gridstratd with a 2,000-second rolling window:
	// small enough that this example's observation stream visibly
	// retires the uploaded history.
	srv := server.MustNew(server.Config{DefaultWindow: 2000})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("gridstratd listening on %s\n\n", base)

	ctx := context.Background()
	client := server.NewClient(base, nil)

	// 2. Upload a GWF trace. We synthesize the paper's 2007-51 week
	// and re-encode it as GWF — in production this is your own probe
	// log exported from Grid Workload Archive tooling.
	tr, err := gridstrat.SynthesizeDataset("2007-51")
	if err != nil {
		log.Fatal(err)
	}
	// Compact the campaign onto a 1,500 s submit span so the rolling
	// window has something to retire.
	for i := range tr.Records {
		tr.Records[i].Submit = float64(i) * 1500 / float64(len(tr.Records))
	}
	var gwf bytes.Buffer
	if err := gridstrat.WriteTraceGWF(&gwf, tr); err != nil {
		log.Fatal(err)
	}
	info, err := client.UploadTrace(ctx, "prod", "gwf", gwf.Bytes(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %q: %d probes, rho=%.3f, mean=%.0fs (version %d)\n",
		info.ID, info.Stats.Probes, info.Stats.Rho, info.Stats.MeanBodyS, info.Version)

	rec, err := client.Recommend(ctx, "prod", server.RecommendRequest{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial recommendation:   %s\n\n", rec.Recommendation.Summary)

	// 3. Stream observations from a degrading grid: each batch is a
	// probe campaign whose latencies grow, as if the infrastructure
	// were congesting week over week. The rolling window drops the old
	// regime and the recommendation follows the drift.
	mean := info.Stats.MeanBodyS
	for batch := 1; batch <= 3; batch++ {
		mean *= 2.5
		lats := make([]float64, 0, 120)
		outliers := 6
		for i := 0; i < 120; i++ {
			lat := mean * (0.6 + 0.8*float64(i%5)/4) // spread around the new mean
			if lat >= info.TimeoutS {
				outliers++ // a probe slower than the censoring bound is an outlier
				continue
			}
			lats = append(lats, lat)
		}
		obs, err := client.Observe(ctx, "prod", server.ObserveRequest{
			Latencies: lats,
			Outliers:  outliers,
			SpacingS:  10,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := client.Recommend(ctx, "prod", server.RecommendRequest{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d (mean→%5.0fs): window=%d records (dropped %d), version %d\n",
			batch, mean, obs.WindowRecords, obs.Dropped, obs.Version)
		fmt.Printf("  re-tuned recommendation: %s\n", rec.Recommendation.Summary)
	}

	// 4. Service-level counters, then a graceful shutdown.
	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstats: %d model(s), %d hits, %d ingested records across %d batches\n",
		st.Models, st.Totals.Hits, st.Totals.IngestRecords, st.Totals.IngestBatches)

	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server shut down cleanly")
}
