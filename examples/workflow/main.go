// Workflow: size the submission strategy of a bag-of-tasks grid
// application against a makespan deadline.
//
// This is the workload the paper's introduction motivates: a medical-
// imaging style application of many independent short jobs whose
// wall-clock time is dominated by grid latency. The example uses the
// Planner's analytic makespan model (order statistics over the
// strategy CDFs) to pick the smallest collection size b meeting the
// deadline, then validates the choice by Monte Carlo.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gridstrat"
)

func main() {
	tr, err := gridstrat.SynthesizeDataset("2007-50") // the slowest week
	if err != nil {
		log.Fatal(err)
	}
	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		log.Fatal(err)
	}

	app := gridstrat.Application{Tasks: 1200, WaveWidth: 120, Runtime: 180}
	const deadline = 3 * 3600.0
	fmt.Printf("application: %d jobs of %.0fs in %d waves of %d; deadline %.1fh\n\n",
		app.Tasks, app.Runtime, app.Waves(), app.WaveWidth, deadline/3600)

	planner, err := gridstrat.NewPlanner(m, gridstrat.WithDeadline(deadline))
	if err != nil {
		log.Fatal(err)
	}

	// Compare the strategy families analytically.
	ests, err := planner.CompareMakespan(app,
		gridstrat.Single{},
		gridstrat.Multiple{B: 2},
		gridstrat.Multiple{B: 5},
		gridstrat.Delayed{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %12s %12s %14s\n", "strategy", "makespan", "peak copies", "task-seconds")
	for _, e := range ests {
		fmt.Printf("%-24s %11.2fh %12.0f %13.0fh\n",
			e.Strategy, e.Makespan/3600, e.GridLoad, e.TotalTaskSec/3600)
	}

	// Pick the smallest b that meets the deadline.
	b, est, err := planner.SmallestCollection(app, 10)
	if err != nil {
		log.Fatal(err)
	}
	if b == 0 {
		fmt.Println("\nno collection size up to 10 meets the deadline; renegotiate the SLA")
		return
	}
	fmt.Printf("\nsmallest b meeting the %.1fh deadline: b=%d (analytic makespan %.2fh)\n",
		deadline/3600, b, est.Makespan/3600)

	// Validate with a Monte Carlo replay of complete application runs.
	tuned, _, err := planner.Optimize(gridstrat.Multiple{B: b})
	if err != nil {
		log.Fatal(err)
	}
	tInf := tuned.Params().TInf
	rng := rand.New(rand.NewSource(7))
	const appRuns = 400
	met := 0
	var total float64
	for r := 0; r < appRuns; r++ {
		makespan := 0.0
		remaining := app.Tasks
		for remaining > 0 {
			width := app.WaveWidth
			if remaining < width {
				width = remaining
			}
			// The wave ends at its slowest task.
			slowest := 0.0
			for k := 0; k < width; k++ {
				j := simulateOneTask(m, b, tInf, rng)
				if j > slowest {
					slowest = j
				}
			}
			makespan += slowest + app.Runtime
			remaining -= width
		}
		total += makespan
		if makespan <= deadline {
			met++
		}
	}
	fmt.Printf("Monte Carlo check:   b=%d gives mean makespan %.2fh; deadline met in %.1f%% of %d runs\n",
		b, total/appRuns/3600, 100*float64(met)/appRuns, appRuns)
}

// simulateOneTask replays one task under b-fold submission.
func simulateOneTask(m gridstrat.Model, b int, tInf float64, rng *rand.Rand) float64 {
	j := 0.0
	for {
		best := math.Inf(1)
		for c := 0; c < b; c++ {
			if l := m.Sample(rng); l < best {
				best = l
			}
		}
		if best < tInf {
			return j + best
		}
		j += tInf
	}
}
