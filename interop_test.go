package gridstrat

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGWFFacadeRoundTrip(t *testing.T) {
	tr, err := SynthesizeDataset("2008-02")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceGWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceGWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Name != tr.Name {
		t.Fatalf("round trip lost data: %d/%d records", got.Len(), tr.Len())
	}
	// The latency model derived from both traces is identical.
	a, err := ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModelFromTrace(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{200, 500, 1500, 5000} {
		if math.Abs(a.Ftilde(x)-b.Ftilde(x)) > 1e-9 {
			t.Fatalf("F̃ differs at %v after GWF round trip", x)
		}
	}
}

func TestCompareDeadlineFacade(t *testing.T) {
	m := refModel(t)
	rep, err := CompareDeadline(m, 900, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadline != 900 {
		t.Fatalf("deadline %v", rep.Deadline)
	}
	if !(rep.Multiple.Probability > rep.Single.Probability) {
		t.Fatal("replication should raise the deadline probability")
	}
	// QuantileJ consistency on the exposed CDFs.
	cdf := MultipleCDF(m, 3, 600)
	x95 := QuantileJ(cdf, 0.95, 600)
	if cdf(x95) < 0.95-1e-9 {
		t.Fatalf("QuantileJ(0.95) = %v but CDF = %v", x95, cdf(x95))
	}
	if QuantileJ(cdf, 0, 600) != 0 || !math.IsInf(QuantileJ(cdf, 1, 600), 1) {
		t.Fatal("quantile limits wrong")
	}
}

func TestMakespanFacade(t *testing.T) {
	m := refModel(t)
	app := Application{Tasks: 200, WaveWidth: 50, Runtime: 60}
	ests, err := CompareMakespan(app,
		NewSingleStrategy(m), NewMultipleStrategy(m, 4), NewDelayedStrategy(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("%d estimates", len(ests))
	}
	if !(ests[1].Makespan < ests[0].Makespan) {
		t.Fatal("b=4 should beat single on makespan")
	}
	b, est, err := SmallestMeetingDeadline(m, app, ests[1].Makespan*1.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b == 0 || b > 4 {
		t.Fatalf("sizing picked b=%d", b)
	}
	if est.Makespan <= 0 {
		t.Fatalf("estimate %v", est.Makespan)
	}
}

func TestBootstrapFacade(t *testing.T) {
	m := refModel(t)
	rng := newRand(17)
	ci, err := BootstrapSingleEJ(m, 500, 50, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Fatalf("bad CI %+v", ci)
	}
	ci2, err := BootstrapStatistic(m, func(bm Model) float64 {
		return EJMultiple(bm, 2, 500)
	}, 50, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ci2.Resamples != 50 || ci2.Level != 0.9 {
		t.Fatalf("metadata lost: %+v", ci2)
	}
}

func TestStationarityFacade(t *testing.T) {
	tr, err := SynthesizeDataset("2006-IX")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := WindowStats(tr, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) < 5 {
		t.Fatalf("%d windows", len(ws))
	}
	rep, err := AnalyzeStationarity(tr, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != len(ws) {
		t.Fatalf("window count mismatch %d vs %d", rep.Windows, len(ws))
	}
}
