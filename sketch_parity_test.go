package gridstrat

import (
	"math"
	"testing"

	"gridstrat/internal/core"
	"gridstrat/internal/stats"
)

// This suite pins the tiered-representation contract end to end: on
// every paper dataset, a Planner over the quantile-sketch backend must
// agree with the exact-ECDF Planner — same recommended strategy, same
// ranking order, and every objective within 1% relative — so demoting
// a model to the sketch tier never changes a planning decision, only
// its memory footprint.

// sketchTwin builds the sketch-backed twin of the dataset's exact
// model: same outlier ratio and timeout, the latency law summarized at
// the default compactor capacity.
func sketchTwin(t *testing.T, name string) (exact, sketched Model) {
	t.Helper()
	tr, err := SynthesizeDataset(name)
	if err != nil {
		t.Fatal(err)
	}
	em, err := ModelFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := stats.SketchFromECDF(em.ECDF(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := core.NewEmpiricalModelDist(sk, tr.OutlierRatio(), tr.Timeout)
	if err != nil {
		t.Fatal(err)
	}
	return em, sm
}

// relDiff is |a-b| relative to the larger magnitude.
func relDiff(a, b float64) float64 {
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 0
	}
	return math.Abs(a-b) / denom
}

// TestSketchPlannerParityAllDatasets: Recommend, Rank and Optimize
// agree between the exact and sketch backends on all 12 paper
// datasets.
func TestSketchPlannerParityAllDatasets(t *testing.T) {
	const tol = 0.01
	for _, spec := range PaperDatasets() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			exact, sketched := sketchTwin(t, spec.Name)
			pe, err := NewPlanner(exact)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := NewPlanner(sketched)
			if err != nil {
				t.Fatal(err)
			}

			// Recommend: same winning strategy, objective within 1%.
			re, err := pe.Recommend()
			if err != nil {
				t.Fatal(err)
			}
			rs, err := ps.Recommend()
			if err != nil {
				t.Fatal(err)
			}
			if re.Strategy != rs.Strategy {
				t.Fatalf("Recommend winner: exact %q, sketch %q", re.Strategy, rs.Strategy)
			}
			if d := relDiff(re.Eval.EJ, rs.Eval.EJ); d > tol {
				t.Fatalf("Recommend EJ: exact %v, sketch %v (rel %v)", re.Eval.EJ, rs.Eval.EJ, d)
			}

			// Rank: same order of strategy families, each EJ within 1%.
			qe, err := pe.Rank()
			if err != nil {
				t.Fatal(err)
			}
			qs, err := ps.Rank()
			if err != nil {
				t.Fatal(err)
			}
			if len(qe) != len(qs) {
				t.Fatalf("Rank lengths: exact %d, sketch %d", len(qe), len(qs))
			}
			for i := range qe {
				if qe[i].Strategy.Name() != qs[i].Strategy.Name() {
					t.Fatalf("Rank[%d]: exact %q, sketch %q", i, qe[i].Strategy.Name(), qs[i].Strategy.Name())
				}
				if d := relDiff(qe[i].Eval.EJ, qs[i].Eval.EJ); d > tol {
					t.Fatalf("Rank[%d] EJ: exact %v, sketch %v (rel %v)", i, qe[i].Eval.EJ, qs[i].Eval.EJ, d)
				}
			}

			// Optimize: each family's tuned objective within 1%.
			for _, s := range Strategies(2) {
				_, ee, err := pe.Optimize(s)
				if err != nil {
					t.Fatal(err)
				}
				_, es, err := ps.Optimize(s)
				if err != nil {
					t.Fatal(err)
				}
				if d := relDiff(ee.EJ, es.EJ); d > tol {
					t.Fatalf("Optimize(%v) EJ: exact %v, sketch %v (rel %v)", s.Name(), ee.EJ, es.EJ, d)
				}
			}
		})
	}
}

// TestSketchModelCrossEvaluation: a tuned strategy from one backend
// evaluates within 1% on the other — the sketch does not merely find a
// different optimum of a different objective, it tracks the same
// objective surface.
func TestSketchModelCrossEvaluation(t *testing.T) {
	exact, sketched := sketchTwin(t, "2006-IX")
	pe, err := NewPlanner(exact)
	if err != nil {
		t.Fatal(err)
	}
	tuned, ev, err := pe.Optimize(Multiple{B: 3})
	if err != nil {
		t.Fatal(err)
	}
	evOnSketch, err := tuned.Evaluate(sketched)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(ev.EJ, evOnSketch.EJ); d > 0.01 {
		t.Fatalf("cross-evaluation EJ: exact %v, sketch %v (rel %v)", ev.EJ, evOnSketch.EJ, d)
	}
}

// TestSketchParityErrorBudget documents why the 1% tolerance holds:
// every dataset's sketch reports a rank-error bound far below the
// tolerance at the default capacity.
func TestSketchParityErrorBudget(t *testing.T) {
	for _, spec := range PaperDatasets() {
		tr, err := SynthesizeDataset(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		em, err := ModelFromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := stats.SketchFromECDF(em.ECDF(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if eps := sk.ErrorBound(); eps >= 0.01 {
			t.Errorf("%s: sketch error bound %v >= 1%% tolerance", spec.Name, eps)
		}
		if sk.N() != em.ECDF().N() {
			t.Errorf("%s: sketch N %d != exact N %d", spec.Name, sk.N(), em.ECDF().N())
		}
	}
}
