package gridstrat

import (
	"math"
	"testing"
)

// TestStrategyOptimizeEvaluateRoundTrip checks that for every strategy
// family the evaluation returned by Optimize is reproduced exactly by
// re-evaluating the tuned strategy.
func TestStrategyOptimizeEvaluateRoundTrip(t *testing.T) {
	m := refModel(t)
	for _, s := range []Strategy{Single{}, Multiple{B: 3}, Delayed{}} {
		tuned, ev, err := s.Optimize(m)
		if err != nil {
			t.Fatalf("%v: %v", s.Name(), err)
		}
		if tuned.Name() != s.Name() {
			t.Fatalf("Optimize changed the family: %v -> %v", s.Name(), tuned.Name())
		}
		if !(tuned.Params().TInf > 0) {
			t.Fatalf("%v: tuned timeout %v", s.Name(), tuned.Params().TInf)
		}
		re, err := tuned.Evaluate(m)
		if err != nil {
			t.Fatalf("%v: re-evaluate: %v", s.Name(), err)
		}
		if math.Abs(re.EJ-ev.EJ) > 1e-9*math.Max(1, ev.EJ) {
			t.Fatalf("%v: EJ %v from Optimize, %v from Evaluate", s.Name(), ev.EJ, re.EJ)
		}
		if math.Abs(re.Sigma-ev.Sigma) > 1e-9*math.Max(1, ev.Sigma) {
			t.Fatalf("%v: σ %v from Optimize, %v from Evaluate", s.Name(), ev.Sigma, re.Sigma)
		}
		if math.Abs(re.Parallel-ev.Parallel) > 1e-9 {
			t.Fatalf("%v: N‖ %v from Optimize, %v from Evaluate", s.Name(), ev.Parallel, re.Parallel)
		}
	}
}

// TestStrategyParamsAndNames checks the identity surface of the three
// concrete types.
func TestStrategyParamsAndNames(t *testing.T) {
	cases := []struct {
		s    Strategy
		name StrategyName
		want StrategyParams
	}{
		{Single{TInf: 400}, StrategySingle, StrategyParams{TInf: 400}},
		{Multiple{B: 4, TInf: 500}, StrategyMultiple, StrategyParams{TInf: 500, B: 4}},
		{Delayed{T0: 200, TInf: 350}, StrategyDelayed, StrategyParams{TInf: 350, T0: 200}},
	}
	for _, c := range cases {
		if c.s.Name() != c.name {
			t.Fatalf("name %v, want %v", c.s.Name(), c.name)
		}
		if c.s.Params() != c.want {
			t.Fatalf("params %+v, want %+v", c.s.Params(), c.want)
		}
	}
	if got := Strategies(3); len(got) != 3 || got[1].Params().B != 3 {
		t.Fatalf("Strategies(3) = %v", got)
	}
}

// TestStrategyInvalidParams checks that invalid parameters surface as
// errors (not panics) everywhere on the new API.
func TestStrategyInvalidParams(t *testing.T) {
	m := refModel(t)
	rng := newRand(3)

	if _, err := (Single{}).Evaluate(m); err == nil {
		t.Fatal("unset single timeout should fail")
	}
	if _, err := (Multiple{B: 0, TInf: 100}).Evaluate(m); err == nil {
		t.Fatal("b=0 should fail")
	}
	if _, _, err := (Multiple{B: -2}).Optimize(m); err == nil {
		t.Fatal("optimizing b=-2 should fail")
	}
	if _, err := (Delayed{T0: 100, TInf: 50}).Evaluate(m); err == nil {
		t.Fatal("t∞ < t0 should fail")
	}
	if _, err := (Delayed{T0: 100, TInf: 300}).Evaluate(m); err == nil {
		t.Fatal("t∞ > 2·t0 should fail")
	}
	if cdf := (Single{}).CDF(m); cdf != nil {
		t.Fatal("CDF of unset single should be nil")
	}
	if cdf := (Multiple{B: 0, TInf: 100}).CDF(m); cdf != nil {
		t.Fatal("CDF of invalid multiple should be nil")
	}
	if cdf := (Delayed{T0: 100, TInf: 50}).CDF(m); cdf != nil {
		t.Fatal("CDF of invalid delayed should be nil")
	}
	if _, err := (Single{TInf: 400}).Simulate(m, 10, nil); err == nil {
		t.Fatal("nil rng should fail")
	}
	if _, err := (Multiple{B: 0, TInf: 100}).Simulate(m, 10, rng); err == nil {
		t.Fatal("simulating b=0 should fail")
	}
	// The legacy free function now also returns an error for a bad
	// collection size instead of panicking.
	if _, err := SimulateMultiple(m, 0, 500, 10, rng); err == nil {
		t.Fatal("SimulateMultiple(b=0) should fail")
	}
	if _, err := CompareDeadline(m, 900, 0); err == nil {
		t.Fatal("CompareDeadline(b=0) should fail")
	}
	if _, err := CompareDeadline(m, -5, 2); err == nil {
		t.Fatal("negative deadline should fail")
	}
}

// TestStrategyCDFMatchesFreeFunctions pins the Strategy CDFs to the
// legacy free-function CDFs.
func TestStrategyCDFMatchesFreeFunctions(t *testing.T) {
	m := refModel(t)
	pts := []float64{50, 300, 900, 2500, 8000}

	sc, lc := Single{TInf: 500}.CDF(m), SingleCDF(m, 500)
	mc, lm := Multiple{B: 3, TInf: 450}.CDF(m), MultipleCDF(m, 3, 450)
	dp := DelayedParams{T0: 250, TInf: 400}
	dc, ld := Delayed{T0: 250, TInf: 400}.CDF(m), DelayedCDF(m, dp)
	for _, x := range pts {
		if sc(x) != lc(x) || mc(x) != lm(x) || dc(x) != ld(x) {
			t.Fatalf("strategy CDF differs from free function at %v", x)
		}
	}
}

// TestStrategySimulateAgreesWithEvaluate is the Monte Carlo
// cross-check through the new interface.
func TestStrategySimulateAgreesWithEvaluate(t *testing.T) {
	m := refModel(t)
	rng := newRand(11)
	for _, s := range []Strategy{
		Single{TInf: 500},
		Multiple{B: 3, TInf: 500},
		Delayed{T0: 300, TInf: 450},
	} {
		ev, err := s.Evaluate(m)
		if err != nil {
			t.Fatalf("%v: %v", s.Name(), err)
		}
		sim, err := s.Simulate(m, 20000, rng)
		if err != nil {
			t.Fatalf("%v: %v", s.Name(), err)
		}
		if math.Abs(sim.EJ-ev.EJ) > 6*sim.StdErr {
			t.Fatalf("%v: MC %v±%v vs analytic %v", s.Name(), sim.EJ, sim.StdErr, ev.EJ)
		}
	}
}

// TestRecommendationAsStrategy checks the bridge from the advisor's
// flat Recommendation to typed strategies.
func TestRecommendationAsStrategy(t *testing.T) {
	cases := []struct {
		rec  Recommendation
		want Strategy
	}{
		{Recommendation{Strategy: StrategySingle, TInf: 400}, Single{TInf: 400}},
		{Recommendation{Strategy: StrategyMultiple, B: 3, TInf: 600}, Multiple{B: 3, TInf: 600}},
		{Recommendation{Strategy: StrategyDelayed, Delayed: DelayedParams{T0: 100, TInf: 180}}, Delayed{T0: 100, TInf: 180}},
	}
	for _, c := range cases {
		if got := c.rec.AsStrategy(); got != c.want {
			t.Fatalf("AsStrategy() = %#v, want %#v", got, c.want)
		}
	}
}
