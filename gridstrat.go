// Package gridstrat is a library for modeling and optimizing user
// job-submission strategies on production grids, reproducing
// "Modeling User Submission Strategies on Production Grids" (Lingrand,
// Montagnat, Glatard — HPDC 2009).
//
// The paper's setting: on a large production grid (EGEE), the latency
// R between submitting a job and its execution start is high, heavy-
// tailed and polluted by an outlier ratio ρ of jobs that never start.
// Users fight this with client-side strategies. This library models
// three of them on top of the cumulative latency histogram
// F̃R(t) = (1-ρ)·FR(t):
//
//   - single resubmission: cancel and resubmit at a timeout t∞;
//   - multiple submission: submit b copies, cancel the rest when one
//     starts, resubmit the collection at t∞;
//   - delayed resubmission: submit a copy every t0 without cancelling
//     until each copy's own t∞ (at most two copies in flight when
//     t0 < t∞ ≤ 2·t0).
//
// For each strategy it computes the expected total latency EJ, its
// standard deviation σJ, the average parallel-copy count N‖, and the
// infrastructure cost Δcost = N‖·EJ/EJ(single optimum), and finds the
// optimal parameters. Latency models come from probe traces (exact
// step-function analytics), from parametric distributions, or from the
// bundled discrete-event grid simulator.
//
// The public API has two layers. The Strategy interface (with concrete
// types Single, Multiple and Delayed) models one parameterized policy:
// Evaluate, CDF, Optimize and Simulate. The Planner facade owns a
// latency model plus planning constraints (parallel-copy budget,
// deadline, Δcost ceiling, context, random source) and answers the
// high-level questions — Recommend, Rank, CompareDeadline,
// EstimateMakespan — memoizing model evaluations across queries.
//
// # Quick start
//
//	tr, _ := gridstrat.SynthesizeDataset("2006-IX")
//	m, _ := gridstrat.ModelFromTrace(tr)
//	p, _ := gridstrat.NewPlanner(m, gridstrat.WithMaxParallel(2))
//	rec, _ := p.Recommend()                            // fastest within the copy budget
//	cheap, _ := p.RecommendCheapest()                  // min Δcost (Eq. 6)
//	single, ev, _ := gridstrat.Single{}.Optimize(m)    // Eq. 1 optimum
//
// See the examples/ directory for complete programs and DESIGN.md for
// the architecture and the reproduction map of every table and figure
// in the paper.
package gridstrat

import (
	"errors"
	"fmt"
	"io"

	"gridstrat/internal/core"
	"gridstrat/internal/experiments"
	"gridstrat/internal/gridsim"
	"gridstrat/internal/stats"
	"gridstrat/internal/trace"
)

// --- Traces and datasets ---

// Trace is a probe-job workload trace (see internal/trace).
type Trace = trace.Trace

// ProbeRecord is one probe observation in a Trace.
type ProbeRecord = trace.ProbeRecord

// Status is a probe terminal state.
type Status = trace.Status

// Probe terminal states.
const (
	StatusCompleted = trace.StatusCompleted
	StatusOutlier   = trace.StatusOutlier
	StatusFault     = trace.StatusFault
	StatusCancelled = trace.StatusCancelled
)

// DefaultTimeout is the paper's probe censoring bound (10,000 s).
const DefaultTimeout = trace.DefaultTimeout

// DatasetSpec describes one of the paper's trace sets.
type DatasetSpec = trace.DatasetSpec

// TraceSet is a named collection of traces.
type TraceSet = trace.Set

// PaperDatasets lists the paper's trace sets with their Table 1
// calibration targets.
func PaperDatasets() []DatasetSpec { return trace.PaperDatasets }

// SynthesizeDataset generates the named paper dataset (e.g.
// "2006-IX", "2007-51").
func SynthesizeDataset(name string) (*Trace, error) {
	spec, err := trace.LookupDataset(name)
	if err != nil {
		return nil, err
	}
	return trace.Synthesize(spec)
}

// SynthesizeAll generates every paper dataset plus the pooled
// "2007/08" aggregate.
func SynthesizeAll() (*TraceSet, error) { return trace.SynthesizeAll() }

// ReadTraceCSV parses a trace from the library's CSV format.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceCSV serializes a trace in the library's CSV format.
func WriteTraceCSV(w io.Writer, t *Trace) error { return trace.WriteCSV(w, t) }

// ReadTraceJSON parses a trace from its JSON form.
func ReadTraceJSON(r io.Reader) (*Trace, error) { return trace.ReadJSON(r) }

// WriteTraceJSON serializes a trace as JSON.
func WriteTraceJSON(w io.Writer, t *Trace) error { return trace.WriteJSON(w, t) }

// --- Latency models ---

// Model is the latency law F̃R consumed by all strategy formulas.
type Model = core.Model

// BatchIntegrals is the optional Model extension the grid-scan
// optimizers detect to answer a whole ascending grid of integral
// queries in one sweep; EmpiricalModel (and the Planner's memoized
// model) implement it. Implementations must return exactly the scalar
// methods' values, so the extension is purely a wall-clock
// optimization.
type BatchIntegrals = core.BatchIntegrals

// ProdBothIntegrals is the optional Model extension returning both
// delayed cross-term integrals from one merged walk.
type ProdBothIntegrals = core.ProdBothIntegrals

// EmpiricalModel is an exact trace-driven Model.
type EmpiricalModel = core.EmpiricalModel

// TableKey identifies one lazily built ECDF integral kernel. An
// EmpiricalModel's TableKeys lists the kernels its queries have
// built; Prewarm on a successor model rebuilds them ahead of an
// atomic model swap, so the first post-swap queries run on hot tables
// (the warm-cache handoff the gridstratd ingestion pipeline performs
// on every rolling-window rebuild).
type TableKey = stats.TableKey

// ParametricModel is a Model over an analytic latency distribution.
type ParametricModel = core.ParametricModel

// Distribution is a univariate continuous distribution (see
// internal/stats for the provided families and fitting routines).
type Distribution = stats.Distribution

// ModelFromTrace builds the empirical latency model of a trace.
func ModelFromTrace(t *Trace) (*EmpiricalModel, error) { return core.ModelFromTrace(t) }

// NewEmpiricalModelFromLatencies builds a model from raw non-outlier
// latencies plus an outlier ratio and timeout.
func NewEmpiricalModelFromLatencies(latencies []float64, rho, timeout float64) (*EmpiricalModel, error) {
	e, err := stats.NewECDF(latencies)
	if err != nil {
		return nil, err
	}
	return core.NewEmpiricalModel(e, rho, timeout)
}

// NewParametricModel wraps a latency distribution with an outlier
// ratio and upper bound.
func NewParametricModel(d Distribution, rho, timeout float64) (*ParametricModel, error) {
	return core.NewParametricModel(d, rho, timeout)
}

// --- Strategies ---

// Evaluation is a strategy outcome: EJ, σJ and N‖.
type Evaluation = core.Evaluation

// DelayedParams are the delayed-resubmission knobs (t0, t∞).
type DelayedParams = core.DelayedParams

// SimResult is a Monte Carlo outcome.
type SimResult = core.SimResult

// EJSingle evaluates Eq. 1: the expected total latency of single
// resubmission at timeout tInf.
func EJSingle(m Model, tInf float64) float64 { return core.EJSingle(m, tInf) }

// SigmaSingle evaluates Eq. 2: the standard deviation of the single
// resubmission total latency at timeout tInf.
func SigmaSingle(m Model, tInf float64) float64 { return core.SigmaSingle(m, tInf) }

// EJMultiple evaluates Eq. 3: the expected total latency of b-fold
// multiple submission at timeout tInf.
func EJMultiple(m Model, b int, tInf float64) float64 { return core.EJMultiple(m, b, tInf) }

// SigmaMultiple evaluates Eq. 4: the standard deviation of the b-fold
// multiple submission total latency at timeout tInf.
func SigmaMultiple(m Model, b int, tInf float64) float64 { return core.SigmaMultiple(m, b, tInf) }

// EJDelayed evaluates the exact delayed-resubmission expectation (the
// quantity approximated by the paper's Eq. 5).
func EJDelayed(m Model, p DelayedParams) float64 { return core.EJDelayed(m, p) }

// SigmaDelayed evaluates the standard deviation of the delayed
// resubmission total latency at fixed parameters.
func SigmaDelayed(m Model, p DelayedParams) float64 { return core.SigmaDelayed(m, p) }

// NParallelExpected returns E[N‖] of the delayed strategy (§6.1).
func NParallelExpected(m Model, p DelayedParams) float64 { return core.NParallelExpected(m, p) }

// DelayedEvaluate bundles EJ, σJ and E[N‖] at fixed parameters.
func DelayedEvaluate(m Model, p DelayedParams) (Evaluation, error) {
	return core.DelayedEvaluate(m, p)
}

// OptimizeSingle minimizes Eq. 1 over t∞.
func OptimizeSingle(m Model) (tInf float64, ev Evaluation) { return core.OptimizeSingle(m) }

// OptimizeMultiple minimizes Eq. 3 over t∞ for fixed b.
func OptimizeMultiple(m Model, b int) (tInf float64, ev Evaluation) {
	return core.OptimizeMultiple(m, b)
}

// OptimizeDelayed minimizes the delayed expectation over (t0, t∞).
func OptimizeDelayed(m Model) (DelayedParams, Evaluation) { return core.OptimizeDelayed(m) }

// OptimizeDelayedRatio minimizes over t0 with t∞/t0 fixed (§6.2).
func OptimizeDelayedRatio(m Model, ratio float64) (DelayedParams, Evaluation) {
	return core.OptimizeDelayedRatio(m, ratio)
}

// --- Cost criterion (Eq. 6) ---

// CostContext anchors Δcost on the single-resubmission optimum.
type CostContext = core.CostContext

// CostResult is a Δcost minimization outcome.
type CostResult = core.CostResult

// NewCostContext optimizes the single-resubmission baseline of m.
func NewCostContext(m Model) (*CostContext, error) { return core.NewCostContext(m) }

// --- Monte Carlo validation ---

// SimulateSingle replays single resubmission at timeout tInf against
// latencies sampled from the model.
func SimulateSingle(m Model, tInf float64, runs int, rng Rand) (SimResult, error) {
	return core.SimulateSingle(m, tInf, runs, rng)
}

// SimulateMultiple replays b-fold multiple submission at timeout tInf
// against latencies sampled from the model.
func SimulateMultiple(m Model, b int, tInf float64, runs int, rng Rand) (SimResult, error) {
	return core.SimulateMultiple(m, b, tInf, runs, rng)
}

// SimulateDelayed replays delayed resubmission at fixed parameters
// against latencies sampled from the model.
func SimulateDelayed(m Model, p DelayedParams, runs int, rng Rand) (SimResult, error) {
	return core.SimulateDelayed(m, p, runs, rng)
}

// --- Grid simulator ---

// GridConfig configures the discrete-event grid simulator.
type GridConfig = gridsim.GridConfig

// Grid is a live grid simulation.
type Grid = gridsim.Grid

// ProbeConfig drives a constant-load probe campaign.
type ProbeConfig = gridsim.ProbeConfig

// DefaultGrid returns a biomed-VO-like simulated infrastructure.
func DefaultGrid(sites int, seed int64) GridConfig { return gridsim.DefaultGrid(sites, seed) }

// NewGrid builds a grid simulation.
func NewGrid(cfg GridConfig) (*Grid, error) { return gridsim.New(cfg) }

// RunProbes executes a probe measurement campaign against a simulated
// grid, returning a trace.
func RunProbes(g *Grid, cfg ProbeConfig, name string) (*Trace, error) {
	return gridsim.RunProbes(g, cfg, name)
}

// DefaultProbeConfig mirrors the paper's campaign shape.
func DefaultProbeConfig(total int) ProbeConfig { return gridsim.DefaultProbeConfig(total) }

// SimStrategySpec fully parameterizes a client strategy for replay
// against a simulated grid.
type SimStrategySpec = gridsim.StrategySpec

// SimOutcome aggregates a grid-replay campaign.
type SimOutcome = gridsim.StrategyOutcome

// SimSpec translates a tuned Strategy into the grid simulator's
// replayable spec, closing the loop between what the model recommends
// and what a live grid does under it.
func SimSpec(s Strategy) (SimStrategySpec, error) {
	if s == nil {
		return SimStrategySpec{}, errors.New("gridstrat: nil strategy")
	}
	p := s.Params()
	switch s.Name() {
	case StrategySingle:
		return SimStrategySpec{Kind: gridsim.StrategySingle, TInf: p.TInf}, nil
	case StrategyMultiple:
		return SimStrategySpec{Kind: gridsim.StrategyMultiple, TInf: p.TInf, B: p.B}, nil
	case StrategyDelayed:
		return SimStrategySpec{
			Kind:    gridsim.StrategyDelayed,
			Delayed: core.DelayedParams{T0: p.T0, TInf: p.TInf},
		}, nil
	}
	return SimStrategySpec{}, fmt.Errorf("gridstrat: no simulator spec for strategy %q", s.Name())
}

// RunStrategySim replays a strategy spec for a task campaign against a
// live simulated grid.
func RunStrategySim(g *Grid, spec SimStrategySpec, tasks, maxRounds int, runtime float64) (SimOutcome, error) {
	return gridsim.RunStrategy(g, spec, tasks, maxRounds, runtime)
}

// --- Experiments ---

// Experiments is a handle over the paper's full evaluation.
type Experiments = experiments.Context

// NewExperiments synthesizes all datasets and prepares the experiment
// harness that regenerates every table and figure.
func NewExperiments() (*Experiments, error) { return experiments.NewContext() }

// WriteAllExperiments regenerates every table and figure into dir,
// fanning independent artifacts across all CPUs. Artifact contents are
// identical for every worker count; only the progress-line order
// varies.
func WriteAllExperiments(c *Experiments, dir string, progress io.Writer) error {
	return experiments.WriteAll(c, dir, progress, 0)
}

// WriteAllExperimentsN is WriteAllExperiments with an explicit worker
// count (n <= 0 means all cores; n = 1 regenerates sequentially).
func WriteAllExperimentsN(c *Experiments, dir string, progress io.Writer, n int) error {
	return experiments.WriteAll(c, dir, progress, n)
}
