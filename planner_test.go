package gridstrat

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"gridstrat/internal/core"
)

// legacyRecommend is the seed's pre-Planner advisor algorithm, kept
// verbatim as a reference: the Planner must reproduce it exactly.
func legacyRecommend(m Model, maxParallel float64) (Recommendation, error) {
	cc, err := core.NewCostContext(m)
	if err != nil {
		return Recommendation{}, err
	}
	best := Recommendation{
		Strategy: StrategySingle,
		TInf:     cc.RefTimeout,
		Eval:     Evaluation{EJ: cc.RefEJ, Sigma: core.SigmaSingle(m, cc.RefTimeout), Parallel: 1},
		Delta:    1,
	}
	if b := int(maxParallel); b >= 2 {
		tInf, ev, delta := cc.DeltaMultiple(b)
		if ev.EJ < best.Eval.EJ {
			best = Recommendation{Strategy: StrategyMultiple, TInf: tInf, B: b, Eval: ev, Delta: delta}
		}
	}
	for _, ratio := range []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0} {
		p, ev := core.OptimizeDelayedRatio(m, ratio)
		if math.IsInf(ev.EJ, 1) || ev.Parallel > maxParallel {
			continue
		}
		if ev.EJ < best.Eval.EJ {
			best = Recommendation{
				Strategy: StrategyDelayed, Delayed: p, Eval: ev,
				Delta: cc.Delta(ev.EJ, ev.Parallel),
			}
		}
	}
	return best, nil
}

func sameRecommendation(a, b Recommendation) bool {
	const tol = 1e-9
	close := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	return a.Strategy == b.Strategy && a.B == b.B &&
		close(a.TInf, b.TInf) &&
		close(a.Delayed.T0, b.Delayed.T0) && close(a.Delayed.TInf, b.Delayed.TInf) &&
		close(a.Eval.EJ, b.Eval.EJ) && close(a.Delta, b.Delta)
}

// TestPlannerRecommendMatchesLegacyOnPaperDatasets replays the advisor
// on every paper dataset through both the reference algorithm and the
// Planner (memoized model, ctx-threaded optimizers) and requires
// identical answers.
func TestPlannerRecommendMatchesLegacyOnPaperDatasets(t *testing.T) {
	specs := PaperDatasets()
	if testing.Short() || raceEnabled {
		// The full 12-dataset sweep dominates the race build's runtime
		// without adding race coverage (the loop is sequential); three
		// datasets keep the pinning meaningful there.
		specs = specs[:3]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr, err := SynthesizeDataset(spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ModelFromTrace(tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []float64{1, 1.5, 4} {
				want, err := legacyRecommend(m, budget)
				if err != nil {
					t.Fatal(err)
				}
				p, err := NewPlanner(m, WithMaxParallel(budget))
				if err != nil {
					t.Fatal(err)
				}
				got, err := p.Recommend()
				if err != nil {
					t.Fatal(err)
				}
				if !sameRecommendation(got, want) {
					t.Fatalf("budget %v: planner %+v, legacy %+v", budget, got, want)
				}
			}
		})
	}
}

// countingModel counts how often each integral hits the base model so
// the Planner's memoization is observable.
type countingModel struct {
	Model
	calls int64
}

func (c *countingModel) Ftilde(t float64) float64 {
	atomic.AddInt64(&c.calls, 1)
	return c.Model.Ftilde(t)
}

func (c *countingModel) IntOneMinusFPow(T float64, b int) float64 {
	atomic.AddInt64(&c.calls, 1)
	return c.Model.IntOneMinusFPow(T, b)
}

func (c *countingModel) IntUOneMinusFPow(T float64, b int) float64 {
	atomic.AddInt64(&c.calls, 1)
	return c.Model.IntUOneMinusFPow(T, b)
}

func (c *countingModel) IntProdOneMinusF(T, shift float64) float64 {
	atomic.AddInt64(&c.calls, 1)
	return c.Model.IntProdOneMinusF(T, shift)
}

func (c *countingModel) IntUProdOneMinusF(T, shift float64) float64 {
	atomic.AddInt64(&c.calls, 1)
	return c.Model.IntUProdOneMinusF(T, shift)
}

// TestPlannerMemoizesModelEvaluations requires a repeated query on one
// Planner to be (nearly) free in terms of base-model work.
func TestPlannerMemoizesModelEvaluations(t *testing.T) {
	cm := &countingModel{Model: refModel(t)}
	p, err := NewPlanner(cm, WithMaxParallel(1.5))
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := atomic.LoadInt64(&cm.calls)
	if afterFirst == 0 {
		t.Fatal("counting model never consulted")
	}
	second, err := p.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := atomic.LoadInt64(&cm.calls)
	if !sameRecommendation(first, second) {
		t.Fatalf("repeated query changed the answer: %+v vs %+v", first, second)
	}
	if extra := afterSecond - afterFirst; extra > afterFirst/100 {
		t.Fatalf("second query cost %d base evaluations (first cost %d); memoization broken", extra, afterFirst)
	}
}

// TestPlannerContextCancellation checks both a pre-cancelled context
// (deterministic error identity) and a mid-flight deadline (the
// optimization must abort quickly instead of running to completion).
func TestPlannerContextCancellation(t *testing.T) {
	m := refModel(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := NewPlanner(m, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Recommend(); err != context.Canceled {
		t.Fatalf("pre-cancelled Recommend: %v, want context.Canceled", err)
	}
	if _, err := p.RecommendCheapest(); err != context.Canceled {
		t.Fatalf("pre-cancelled RecommendCheapest: %v, want context.Canceled", err)
	}
	if _, _, err := p.Optimize(Delayed{}); err != context.Canceled {
		t.Fatalf("pre-cancelled Optimize: %v, want context.Canceled", err)
	}
	if _, err := p.Simulate(Single{TInf: 500}, 100000); err != context.Canceled {
		t.Fatalf("pre-cancelled Simulate: %v, want context.Canceled", err)
	}

	tctx, tcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer tcancel()
	p2, err := NewPlanner(m, WithContext(tctx))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := p2.Recommend(); err == nil {
		t.Fatal("Recommend survived a 5ms deadline")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; the optimizers are not checking the context", elapsed)
	}
}

// TestPlannerOptions exercises the option validation surface.
func TestPlannerOptions(t *testing.T) {
	m := refModel(t)
	if _, err := NewPlanner(nil); err == nil {
		t.Fatal("nil model should fail")
	}
	bad := []PlannerOption{
		WithMaxParallel(0.5),
		WithMaxParallel(math.NaN()),
		WithMaxParallel(math.Inf(1)),
		WithDeadline(0),
		WithBudget(-1),
		WithBudget(math.NaN()),
		WithContext(nil),
		WithRand(nil),
		WithCollectionSize(0),
	}
	for i, opt := range bad {
		if _, err := NewPlanner(m, opt); err == nil {
			t.Fatalf("bad option %d accepted", i)
		}
	}
	if _, err := NewPlanner(m,
		WithMaxParallel(3), WithDeadline(600), WithBudget(2),
		WithContext(context.Background()), WithRand(rand.New(rand.NewSource(9))),
		WithCollectionSize(4)); err != nil {
		t.Fatal(err)
	}
	// Zero budget is the documented "no ceiling" sentinel.
	if _, err := NewPlanner(m, WithBudget(0)); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerBudgetCeiling checks the Δcost ceiling: expensive
// configurations drop out of Recommend and Rank.
func TestPlannerBudgetCeiling(t *testing.T) {
	m := refModel(t)
	// Without a ceiling a 5-copy budget picks multiple (Δ ≈ 1.8).
	free, err := NewPlanner(m, WithMaxParallel(5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := free.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy != StrategyMultiple {
		t.Fatalf("unbounded pick %v", r.Strategy)
	}
	// A Δcost ceiling of 1.05 excludes it.
	capped, err := NewPlanner(m, WithMaxParallel(5), WithBudget(1.05))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := capped.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Strategy == StrategyMultiple {
		t.Fatalf("Δcost ceiling ignored: picked %v at Δ=%v", rc.Strategy, rc.Delta)
	}
	if rc.Delta > 1.05 {
		t.Fatalf("recommendation over budget: Δ=%v", rc.Delta)
	}
	ranked, err := capped.Rank(Single{}, Multiple{B: 5}, Delayed{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ranked {
		if e.Delta > 1.05 {
			t.Fatalf("Rank kept over-budget entry %v (Δ=%v)", e.Strategy, e.Delta)
		}
	}
}

// TestPlannerResolvePartialParams checks that partially specified
// strategies surface their validation error instead of being silently
// re-optimized (which would discard the pinned knob).
func TestPlannerResolvePartialParams(t *testing.T) {
	m := refModel(t)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	app := Application{Tasks: 100, WaveWidth: 20, Runtime: 60}
	if _, err := p.EstimateMakespanUnder(app, Delayed{T0: 600}); err == nil {
		t.Fatal("Delayed with only T0 set should error, not silently retune T0")
	}
	if _, err := p.Rank(Delayed{TInf: 400}); err == nil {
		t.Fatal("Delayed with only TInf set should error")
	}
	if _, err := p.Rank(Multiple{B: 3, TInf: -500}); err == nil {
		t.Fatal("negative timeout should error, not silently retune")
	}
	if _, err := p.Rank(Single{TInf: math.NaN()}); err == nil {
		t.Fatal("NaN timeout should error, not silently retune")
	}
	// Fully unset still optimizes.
	if _, err := p.Rank(Delayed{}); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerRank checks ordering and the default strategy set.
func TestPlannerRank(t *testing.T) {
	m := refModel(t)
	p, err := NewPlanner(m, WithCollectionSize(4))
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := p.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("%d entries", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Eval.EJ < ranked[i-1].Eval.EJ {
			t.Fatal("Rank output not sorted by EJ")
		}
	}
	// On 2006-IX: multiple(b=4) < delayed < single on EJ.
	if ranked[0].Strategy.Name() != StrategyMultiple || ranked[2].Strategy.Name() != StrategySingle {
		t.Fatalf("unexpected order: %v, %v, %v",
			ranked[0].Strategy.Name(), ranked[1].Strategy.Name(), ranked[2].Strategy.Name())
	}
}

// TestPlannerDeadline checks CompareDeadline against the legacy free
// function and the configuration errors.
func TestPlannerDeadline(t *testing.T) {
	m := refModel(t)
	noDeadline, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noDeadline.CompareDeadline(); err == nil {
		t.Fatal("CompareDeadline without WithDeadline should fail")
	}
	p, err := NewPlanner(m, WithDeadline(900), WithCollectionSize(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.CompareDeadline()
	if err != nil {
		t.Fatal(err)
	}
	want, err := CompareDeadline(m, 900, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Single.Probability != want.Single.Probability ||
		rep.Multiple.Probability != want.Multiple.Probability {
		t.Fatalf("planner deadline report differs from legacy: %+v vs %+v", rep, want)
	}
}

// TestPlannerMakespan checks the makespan facade and collection
// sizing.
func TestPlannerMakespan(t *testing.T) {
	m := refModel(t)
	app := Application{Tasks: 200, WaveWidth: 50, Runtime: 60}
	p, err := NewPlanner(m, WithMaxParallel(4), WithDeadline(4000))
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.EstimateMakespan(app)
	if err != nil {
		t.Fatal(err)
	}
	if !(est.Makespan > 0) {
		t.Fatalf("makespan %v", est.Makespan)
	}
	ests, err := p.CompareMakespan(app, Single{}, Multiple{B: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 || !(ests[1].Makespan < ests[0].Makespan) {
		t.Fatalf("b=4 should beat single: %+v", ests)
	}
	b, sized, err := p.SmallestCollection(app, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b == 0 || sized.Makespan > 4000 {
		t.Fatalf("sizing picked b=%d makespan=%v", b, sized.Makespan)
	}
	// Explicit-strategy estimation matches the legacy free function.
	tuned, _, err := p.Optimize(Multiple{B: 4})
	if err != nil {
		t.Fatal(err)
	}
	under, err := p.EstimateMakespanUnder(app, tuned)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := EstimateMakespan(app, NewMultipleStrategy(m, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(under.Makespan-legacy.Makespan) > 1e-6*legacy.Makespan {
		t.Fatalf("makespan %v vs legacy %v", under.Makespan, legacy.Makespan)
	}
}

// TestGWFReadWriteReadLossless drives the full GWF loop: an exported
// trace re-imports to identical records and re-exports byte-for-byte.
func TestGWFReadWriteReadLossless(t *testing.T) {
	tr, err := SynthesizeDataset("2007-51")
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := WriteTraceGWF(&first, tr); err != nil {
		t.Fatal(err)
	}
	in, err := ReadTraceGWF(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteTraceGWF(&second, in); err != nil {
		t.Fatal(err)
	}
	again, err := ReadTraceGWF(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("GWF serialization not stable across a read→write cycle")
	}
	if again.Name != in.Name || again.Timeout != in.Timeout || again.Len() != in.Len() {
		t.Fatalf("headers drifted: %q/%v/%d vs %q/%v/%d",
			again.Name, again.Timeout, again.Len(), in.Name, in.Timeout, in.Len())
	}
	for i := range in.Records {
		a, b := in.Records[i], again.Records[i]
		if a != b {
			t.Fatalf("record %d drifted: %+v vs %+v", i, a, b)
		}
	}
}
