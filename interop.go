package gridstrat

import (
	"io"

	"gridstrat/internal/core"
	"gridstrat/internal/trace"
)

// ReadTraceGWF parses a trace from the Grid-Workload-Format flavored
// column layout (JobID SubmitTime WaitTime RunTime Status),
// interoperable with Grid Workload Archive tooling.
func ReadTraceGWF(r io.Reader) (*Trace, error) { return trace.ReadGWF(r) }

// WriteTraceGWF serializes a trace in the Grid-Workload-Format
// flavored column layout read back by ReadTraceGWF.
func WriteTraceGWF(w io.Writer, t *Trace) error { return trace.WriteGWF(w, t) }

// DeadlineReport compares strategies on P(J <= deadline).
type DeadlineReport = core.DeadlineReport

// DeadlineEntry is one strategy's deadline performance.
type DeadlineEntry = core.DeadlineEntry

// CompareDeadline evaluates the deadline-hit probability and the 95th
// percentile of the total latency under the optimized single, b-fold
// multiple and delayed strategies.
//
// Deprecated: build a Planner with NewPlanner(m, WithDeadline(deadline),
// WithCollectionSize(b)) and call its CompareDeadline method.
func CompareDeadline(m Model, deadline float64, b int) (DeadlineReport, error) {
	return core.CompareDeadline(m, deadline, b)
}

// QuantileJ inverts a strategy CDF (from SingleCDF, MultipleCDF or
// DelayedCDF): the smallest t with P(J <= t) >= p.
func QuantileJ(cdf func(float64) float64, p, hint float64) float64 {
	return core.QuantileJ(cdf, p, hint)
}

// MixtureModel pools several latency regimes with weights — the
// non-stationary extension of the latency model (one regime per time
// window, weighted by submission volume).
type MixtureModel = core.MixtureModel

// NewMixtureModel pools models with positive weights.
func NewMixtureModel(models []Model, weights []float64) (*MixtureModel, error) {
	return core.NewMixtureModel(models, weights)
}

// Discretize converts any Model (mixture, parametric) into an
// exact-integral EmpiricalModel by quantile tabulation — the fast
// representation for the optimizers.
func Discretize(m Model, n int) (*EmpiricalModel, error) { return core.Discretize(m, n) }
