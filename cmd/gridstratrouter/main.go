// Gridstratrouter is the cluster front for a fleet of gridstratd
// daemons: it consistent-hashes model IDs across a static backend
// list, forwards model-scoped requests to their owner (failing over
// to ring successors while a backend is down), and fans multi-model
// queries out across the fleet with partial-failure reporting. The
// router holds no model state — durability lives in each backend's
// write-ahead log — so it can be restarted freely.
//
// Usage:
//
//	gridstratrouter -backends http://host1:8372,http://host2:8372 [flags]
//
// Flags:
//
//	-addr string      listen address (default ":8371")
//	-backends string  comma-separated backend base URLs (required)
//	-vnodes int       virtual nodes per backend on the hash ring
//	                  (default 64)
//	-replicas int     candidates per model ID: the owner plus
//	                  replicas-1 failover successors (default 3)
//	-health-interval duration
//	                  backend health polling period, jittered ±20% per
//	                  sweep (default 1s)
//	-breaker-threshold int
//	                  consecutive failures that open a backend's
//	                  circuit breaker (default 5)
//	-breaker-cooldown duration
//	                  how long an open breaker denies traffic before
//	                  the half-open probe (default 2s)
//	-hedge-delay duration
//	                  duplicate an idempotent read to a second
//	                  connection after this long without a response;
//	                  0 tracks each backend's rolling p95 latency,
//	                  negative disables hedging (default 0)
//	-retry-budget float
//	                  retry-budget earn rate: tokens earned per primary
//	                  request, one spent per failover retry or hedge
//	                  (default 0.1)
//	-pprof string     expose net/http/pprof on a separate debug
//	                  listener at this address, e.g. "127.0.0.1:6061"
//	                  (default "", off)
//	-shutdown-timeout duration
//	                  grace period for in-flight requests on
//	                  SIGINT/SIGTERM (default 10s)
//	-quiet            disable placement/transition logging
//
// The routed surface is the same /v1 API a single gridstratd serves
// (docs/openapi.yaml); see README.md for a cluster walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gridstrat/internal/cluster"
	"gridstrat/internal/debuglisten"
)

func main() {
	var (
		addr             = flag.String("addr", ":8371", "listen address")
		backends         = flag.String("backends", "", "comma-separated backend base URLs (required)")
		vnodes           = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		replicas         = flag.Int("replicas", 3, "candidates per model ID (owner + failover successors)")
		healthInterval   = flag.Duration("health-interval", time.Second, "backend health polling period (jittered ±20%)")
		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive failures that open a backend's circuit breaker")
		breakerCooldown  = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before the half-open probe")
		hedgeDelay       = flag.Duration("hedge-delay", 0, "hedge idempotent reads after this delay (0 = rolling p95, negative = off)")
		retryBudget      = flag.Float64("retry-budget", 0.1, "retry-budget tokens earned per primary request")
		pprofAddr        = flag.String("pprof", "", "expose net/http/pprof on this separate debug address (empty = off)")
		shutdownTimeout  = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
		quiet            = flag.Bool("quiet", false, "disable placement/transition logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "gridstratrouter: ", log.LstdFlags)
	if *backends == "" {
		logger.Fatal("missing -backends (comma-separated backend base URLs)")
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}

	cfg := cluster.Config{
		Backends:         urls,
		VNodes:           *vnodes,
		Replicas:         *replicas,
		HealthInterval:   *healthInterval,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		HedgeDelay:       *hedgeDelay,
		RetryBudgetRatio: *retryBudget,
	}
	if !*quiet {
		cfg.Logger = logger
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		logger.Fatalf("config: %v", err)
	}
	rt.Start()
	defer rt.Close()

	debuglisten.Serve(*pprofAddr, logger)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Printf("listening on %s, routing %d backend(s)", *addr, len(urls))

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down (grace %v)", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Printf("forced shutdown: %v", err)
			_ = hs.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
		}
		logger.Printf("bye")
	}
}
