// Command repro regenerates every table and figure of the paper's
// evaluation (Tables 1–6, Figures 1–8) from the calibrated synthetic
// trace sets and writes them into an output directory.
//
// Usage:
//
//	repro [-out results] [-quiet] [-j N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gridstrat"
)

func main() {
	out := flag.String("out", "results", "output directory for tables (.txt) and figure data (.dat)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	jobs := flag.Int("j", 0, "number of artifacts to generate concurrently (0 = all cores, 1 = sequential)")
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = io.Discard
	}

	c, err := gridstrat.NewExperiments()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if err := gridstrat.WriteAllExperimentsN(c, *out, progress, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	fmt.Fprintf(progress, "all artifacts written to %s\n", *out)
}
