// Command repro regenerates every table and figure of the paper's
// evaluation (Tables 1–6, Figures 1–8) from the calibrated synthetic
// trace sets and writes them into an output directory.
//
// Usage:
//
//	repro [-out results] [-quiet]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gridstrat"
)

func main() {
	out := flag.String("out", "results", "output directory for tables (.txt) and figure data (.dat)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = io.Discard
	}

	c, err := gridstrat.NewExperiments()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if err := gridstrat.WriteAllExperiments(c, *out, progress); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	fmt.Fprintf(progress, "all artifacts written to %s\n", *out)
}
