// Command tracegen emits the calibrated synthetic probe traces that
// stand in for the paper's EGEE measurement campaigns.
//
// Usage:
//
//	tracegen -list
//	tracegen -dataset 2006-IX [-format csv|json] [-out file]
//	tracegen -dataset 2006-IX -regime switching [-seed 20090611]
//	tracegen -all -dir traces
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gridstrat"
)

func main() {
	list := flag.Bool("list", false, "list available datasets with their calibration targets")
	dataset := flag.String("dataset", "", "dataset to generate (e.g. 2006-IX)")
	format := flag.String("format", "csv", "output format: csv, json or gwf")
	out := flag.String("out", "", "output file (default stdout)")
	all := flag.Bool("all", false, "generate every dataset")
	dir := flag.String("dir", "traces", "output directory with -all")
	regimeName := flag.String("regime", "", "overlay an adversarial regime on the dataset: stationary, heavytail, diurnal, switching or outage")
	seed := flag.Uint64("seed", 20090611, "master seed with -regime")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-9s %9s %8s %9s %7s %7s\n", "name", "mean<10^4", "sigmaR", "mean+10^4", "rho", "probes")
		for _, s := range gridstrat.PaperDatasets() {
			fmt.Printf("%-9s %8.0fs %7.0fs %8.0fs %7.3f %7d\n",
				s.Name, s.MeanBody, s.StdBody, s.MeanCensored, s.Rho(), s.Probes)
		}
	case *all:
		if err := writeAll(*dir, *format); err != nil {
			fail(err)
		}
	case *dataset != "":
		var (
			tr  *gridstrat.Trace
			err error
		)
		if *regimeName != "" {
			kind, kerr := gridstrat.ParseRegimeKind(*regimeName)
			if kerr != nil {
				fail(kerr)
			}
			tr, err = gridstrat.SynthesizeRegime(*dataset, kind, *seed)
		} else {
			tr, err = gridstrat.SynthesizeDataset(*dataset)
		}
		if err != nil {
			fail(err)
		}
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := write(w, tr, *format); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeAll(dir, format string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	set, err := gridstrat.SynthesizeAll()
	if err != nil {
		return err
	}
	for name, tr := range set.Traces {
		fname := strings.ReplaceAll(name, "/", "-") + "." + format
		f, err := os.Create(filepath.Join(dir, fname))
		if err != nil {
			return err
		}
		if err := write(f, tr, format); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d probes)\n", filepath.Join(dir, fname), tr.Len())
	}
	return nil
}

func write(w io.Writer, tr *gridstrat.Trace, format string) error {
	switch format {
	case "csv":
		return gridstrat.WriteTraceCSV(w, tr)
	case "json":
		return gridstrat.WriteTraceJSON(w, tr)
	case "gwf":
		return gridstrat.WriteTraceGWF(w, tr)
	default:
		return fmt.Errorf("unknown format %q (want csv, json or gwf)", format)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
