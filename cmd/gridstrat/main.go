// Command gridstrat evaluates and optimizes submission strategies
// over a probe trace.
//
// Usage:
//
//	gridstrat optimize -trace t.csv [-strategy single|multiple|delayed|cost|auto] [-b 4] [-budget 2]
//	gridstrat evaluate -trace t.csv -strategy single -tinf 600
//	gridstrat evaluate -trace t.csv -strategy multiple -b 4 -tinf 600
//	gridstrat evaluate -trace t.csv -strategy delayed -t0 340 -tinf 480
//	gridstrat stats    -trace t.csv
//
// The trace file must be in the library's CSV format (see tracegen).
// A dataset name (e.g. 2006-IX) can be passed instead of a file.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridstrat"
	"gridstrat/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace CSV file or paper dataset name")
	strategy := fs.String("strategy", "auto", "single, multiple, delayed, cost or auto")
	b := fs.Int("b", 2, "collection size for the multiple strategy")
	t0 := fs.Float64("t0", 0, "delayed strategy t0 (s)")
	tInf := fs.Float64("tinf", 0, "timeout t-inf (s)")
	budget := fs.Float64("budget", 2, "parallel-copy budget for -strategy auto")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *tracePath == "" {
		usage()
	}

	tr, err := loadTrace(*tracePath)
	if err != nil {
		fail(err)
	}

	switch cmd {
	case "stats":
		st := tr.ComputeStats()
		fmt.Printf("trace %s: %d probes, %d completed, %d outliers (rho=%.3f)\n",
			st.Name, st.Probes, st.Completed, st.Outliers, st.Rho)
		fmt.Printf("latency: mean=%.0fs median=%.0fs std=%.0fs censored-mean=%.0fs\n",
			st.MeanBody, st.Median, st.StdBody, st.MeanCensored)
		return
	case "analyze":
		analyze(tr)
		return
	case "optimize", "evaluate", "deadline":
		// handled below
	default:
		usage()
	}

	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		fail(err)
	}

	switch cmd {
	case "evaluate":
		evaluate(m, *strategy, *b, *t0, *tInf)
	case "deadline":
		requirePositive("tinf", *tInf) // reused as the deadline value
		p, err := gridstrat.NewPlanner(m,
			gridstrat.WithDeadline(*tInf), gridstrat.WithCollectionSize(*b))
		if err != nil {
			fail(err)
		}
		rep, err := p.CompareDeadline()
		if err != nil {
			fail(err)
		}
		fmt.Printf("P(start before %.0fs) and tail latency:\n", rep.Deadline)
		for _, e := range []gridstrat.DeadlineEntry{rep.Single, rep.Multiple, rep.Delayed} {
			fmt.Printf("  %-28s P=%.3f  P95=%.0fs  N‖=%.2f\n", e.Label, e.Probability, e.P95, e.Parallel)
		}
	default:
		optimizeCmd(m, *strategy, *b, *budget)
	}
}

func loadTrace(path string) (*gridstrat.Trace, error) {
	if _, err := os.Stat(path); err != nil {
		// Not a file: try a paper dataset name.
		if tr, derr := gridstrat.SynthesizeDataset(path); derr == nil {
			return tr, nil
		}
		return nil, fmt.Errorf("%q is neither a readable file nor a known dataset", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gridstrat.ReadTraceCSV(f)
}

// pickStrategy maps the -strategy/-b/-t0/-tinf flags to a Strategy
// value; parameters left at zero are tuned by Optimize.
func pickStrategy(name string, b int, t0, tInf float64) gridstrat.Strategy {
	switch name {
	case "single":
		return gridstrat.Single{TInf: tInf}
	case "multiple":
		return gridstrat.Multiple{B: b, TInf: tInf}
	case "delayed":
		return gridstrat.Delayed{T0: t0, TInf: tInf}
	default:
		fail(fmt.Errorf("unknown strategy %q (want single, multiple or delayed)", name))
		return nil
	}
}

func describe(s gridstrat.Strategy, ev gridstrat.Evaluation) string {
	return fmt.Sprintf("%v: EJ=%.1fs σJ=%.1fs N‖=%.3f", s, ev.EJ, ev.Sigma, ev.Parallel)
}

func evaluate(m gridstrat.Model, strategy string, b int, t0, tInf float64) {
	requirePositive("tinf", tInf)
	if strategy == "delayed" {
		requirePositive("t0", t0)
	}
	s := pickStrategy(strategy, b, t0, tInf)
	ev, err := s.Evaluate(m)
	if err != nil {
		fail(err)
	}
	fmt.Println(describe(s, ev))
}

func optimizeCmd(m gridstrat.Model, strategy string, b int, budget float64) {
	switch strategy {
	case "single", "multiple", "delayed":
		tuned, ev, err := pickStrategy(strategy, b, 0, 0).Optimize(m)
		if err != nil {
			fail(err)
		}
		fmt.Println("optimal", describe(tuned, ev))
	case "cost":
		p, err := gridstrat.NewPlanner(m)
		if err != nil {
			fail(err)
		}
		r, err := p.RecommendCheapest()
		if err != nil {
			fail(err)
		}
		fmt.Println("cheapest for the grid:", r)
	case "auto":
		p, err := gridstrat.NewPlanner(m, gridstrat.WithMaxParallel(budget))
		if err != nil {
			fail(err)
		}
		r, err := p.Recommend()
		if err != nil {
			fail(err)
		}
		fmt.Printf("best under N‖ ≤ %.2f: %s\n", budget, r)
	default:
		fail(fmt.Errorf("unknown strategy %q", strategy))
	}
}

// analyze prints a distribution-fitting and stationarity report of the
// trace's latency body.
func analyze(tr *gridstrat.Trace) {
	lat := tr.Latencies()
	if len(lat) == 0 {
		fail(fmt.Errorf("trace has no completed probes"))
	}
	fmt.Printf("fitting %d non-outlier latencies:\n", len(lat))
	fmt.Printf("%-12s %14s %10s %10s\n", "family", "log-lik", "KS", "KS p-val")
	for _, r := range stats.FitBest(lat) {
		fmt.Printf("%-12s %14.1f %10.4f %10.4f\n",
			r.Name, r.LogLik, r.KS, stats.KSPValue(r.KS, len(lat)))
	}

	rep, err := gridstrat.AnalyzeStationarity(tr, 2*3600)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nstationarity (2h windows): %d windows, mean drift %.1f%%, rho drift %.3f\n",
		rep.Windows, rep.MeanDrift*100, rep.RhoDrift)
	fmt.Printf("Mann–Kendall trend: tau=%.2f p=%.3f, Theil–Sen slope %.2fs/window\n",
		rep.MeanTrend.Tau, rep.MeanTrend.PValue, rep.TrendSlope)
	if rep.MeanTrend.PValue < 0.05 {
		fmt.Println("warning: significant latency trend — retune (t0, t∞) frequently (paper §7.2)")
	}
}

func requirePositive(name string, v float64) {
	if v <= 0 {
		fail(fmt.Errorf("flag -%s must be positive", name))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gridstrat stats    -trace <file|dataset>
  gridstrat analyze  -trace <file|dataset>
  gridstrat deadline -trace <file|dataset> -tinf <deadline-s> [-b N]
  gridstrat optimize -trace <file|dataset> [-strategy single|multiple|delayed|cost|auto] [-b N] [-budget X]
  gridstrat evaluate -trace <file|dataset> -strategy <s> [-b N] [-t0 S] [-tinf S]`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gridstrat:", err)
	os.Exit(1)
}
