// Gridstratd is the long-running HTTP planning service over the
// gridstrat library: a sharded model registry serving strategy
// recommendations, rankings, optimizations, Monte Carlo replays and
// makespan estimates, with live probe-trace ingestion that keeps each
// model tuned on a rolling window — the paper's §7.2 deployment loop
// run continuously.
//
// Usage:
//
//	gridstratd [flags]
//
// Flags:
//
//	-addr string      listen address (default ":8372")
//	-preload string   comma-separated paper datasets to register at
//	                  boot, or "all" (default "")
//	-window duration  default rolling-window width for new models
//	                  (default 168h, the paper's weekly granularity)
//	-shards int       registry shard count (default 8)
//	-max-models int   registry capacity; LRU eviction past it (default 256)
//	-max-runs int     per-request Monte Carlo run cap (default 2000000)
//	-max-body int     request body cap in bytes (default 33554432)
//	-rebuild-interval duration
//	                  decouple observation acks from model rebuilds:
//	                  batches queue and a per-model worker coalesces
//	                  everything that arrived within the interval into
//	                  one rebuild (0, the default, rebuilds
//	                  synchronously on every batch)
//	-max-queued int   per-model cap on acknowledged-but-unapplied
//	                  observation records; past it a batch pays for an
//	                  inline drain (default 1048576)
//	-wal-dir string   enable durable persistence: per-model write-ahead
//	                  logs plus compacted snapshots under this
//	                  directory, replayed on boot so a restart loses no
//	                  acknowledged observation (default "", memory-only)
//	-wal-sync string  WAL fsync policy: "always", "interval" or "none"
//	                  (default "interval": group-flush every 100ms)
//	-snapshot-every int
//	                  compact a model's log into a fresh snapshot after
//	                  this many appended records (default 4096)
//	-max-inflight int
//	                  hard cap on concurrently admitted /v1/models*
//	                  requests; past class fractions of it (sheddable
//	                  50%, standard 90%, critical 100%) requests are
//	                  shed with 429 + Retry-After, keyed on the
//	                  X-Gridstrat-Class header (default 0, no admission
//	                  control)
//	-degraded-pending int
//	                  queued-observation threshold past which query
//	                  responses are marked degraded: "backlog"
//	                  (default 4096)
//	-chaos string     deterministic fault-injection scenario, JSON
//	                  inline or @path to a file (default "", disabled;
//	                  the CI chaos drill arms it)
//	-pprof string     expose net/http/pprof on a separate debug
//	                  listener at this address, e.g. "127.0.0.1:6060"
//	                  (default "", off)
//	-shutdown-timeout duration
//	                  grace period for in-flight requests on
//	                  SIGINT/SIGTERM (default 10s)
//	-quiet            disable per-request logging
//
// The API is specified in docs/openapi.yaml; see README.md for a curl
// walkthrough of every endpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gridstrat/internal/chaos"
	"gridstrat/internal/debuglisten"
	"gridstrat/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8372", "listen address")
		preload         = flag.String("preload", "", `comma-separated paper datasets to register at boot, or "all"`)
		window          = flag.Duration("window", 168*time.Hour, "default rolling-window width for new models")
		shards          = flag.Int("shards", 8, "registry shard count")
		maxModels       = flag.Int("max-models", 256, "registry capacity (LRU eviction past it)")
		maxBytes        = flag.Int64("max-bytes", 0, "resident-memory cap in bytes: past it cold models demote to the quantile-sketch tier, then evict (0 = unlimited)")
		sketchTier      = flag.Bool("sketch-tier", false, "build every model in the sketch tier from registration on")
		maxRuns         = flag.Int("max-runs", 2_000_000, "per-request Monte Carlo run cap")
		maxBody         = flag.Int64("max-body", 32<<20, "request body cap in bytes")
		rebuildInterval = flag.Duration("rebuild-interval", 0, "coalesce observation batches into one model rebuild per interval (0 = rebuild on every batch)")
		maxQueued       = flag.Int("max-queued", 1<<20, "per-model cap on queued observation records before an inline drain")
		walDir          = flag.String("wal-dir", "", "durable persistence directory (empty = memory-only)")
		walSync         = flag.String("wal-sync", "interval", `WAL fsync policy: "always", "interval" or "none"`)
		snapshotEvery   = flag.Int("snapshot-every", 4096, "compact a model's WAL into a snapshot after this many records")
		maxInflight     = flag.Int("max-inflight", 0, "hard cap on concurrently admitted /v1/models* requests; sheds by SLO class past it (0 = no admission control)")
		degradedPending = flag.Int("degraded-pending", 4096, `queued-observation threshold past which responses are marked degraded: "backlog"`)
		chaosSpec       = flag.String("chaos", "", "fault-injection scenario: inline JSON or @path (empty = disabled)")
		pprofAddr       = flag.String("pprof", "", "expose net/http/pprof on this separate debug address (empty = off)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
		quiet           = flag.Bool("quiet", false, "disable per-request logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "gridstratd: ", log.LstdFlags)
	cfg := server.Config{
		Shards:           *shards,
		MaxModels:        *maxModels,
		DefaultWindow:    window.Seconds(),
		MaxBodyBytes:     *maxBody,
		MaxRuns:          *maxRuns,
		RebuildInterval:  *rebuildInterval,
		MaxQueuedRecords: *maxQueued,
		WALDir:           *walDir,
		WALSync:          *walSync,
		SnapshotEvery:    *snapshotEvery,
		MaxBytes:         *maxBytes,
		SketchTier:       *sketchTier,
		MaxInflight:      *maxInflight,
		DegradedPending:  *degradedPending,
	}
	if !*quiet {
		cfg.Logger = logger
	}
	if *chaosSpec != "" {
		doc := []byte(*chaosSpec)
		if strings.HasPrefix(*chaosSpec, "@") {
			var err error
			doc, err = os.ReadFile((*chaosSpec)[1:])
			if err != nil {
				logger.Fatalf("chaos: %v", err)
			}
		}
		sc, err := chaos.ParseScenario(doc)
		if err != nil {
			logger.Fatalf("chaos: %v", err)
		}
		cfg.Chaos = &sc
		logger.Printf("chaos armed: %d rule(s), seed %d", len(sc.Rules), sc.Seed)
	}
	srv, err := server.New(cfg)
	if err != nil {
		logger.Fatalf("config: %v", err)
	}

	if *walDir != "" {
		start := time.Now()
		if err := srv.Recover(); err != nil {
			logger.Fatalf("wal recovery: %v", err)
		}
		logger.Printf("recovered %d model(s) from %s in %v",
			srv.Registry().Len(), *walDir, time.Since(start).Round(time.Millisecond))
	}

	if *preload != "" {
		names := strings.Split(*preload, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		start := time.Now()
		if err := srv.Preload(names...); err != nil {
			logger.Fatalf("preload: %v", err)
		}
		logger.Printf("preloaded %d model(s) in %v", srv.Registry().Len(), time.Since(start).Round(time.Millisecond))
	}

	debuglisten.Serve(*pprofAddr, logger)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Printf("listening on %s (models: %d)", *addr, srv.Registry().Len())

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down (grace %v)", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Printf("forced shutdown: %v", err)
			_ = hs.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
		}
		logger.Printf("bye")
	}
}
