// Command gridsim runs the discrete-event grid simulator: it executes
// a probe measurement campaign against a synthetic EGEE-like
// infrastructure and optionally evaluates the three submission
// strategies against the live grid. With -regime it instead runs the
// replay conformance harness: adversarial regime traces are planned
// per SLO class and the recommendations replayed against the same
// seeded regime.
//
// Usage:
//
//	gridsim [-sites 24] [-seed 1] [-probes 1000] [-out trace.csv] [-strategies]
//	gridsim -regime all [-dataset all] [-regimeseed 20090611] [-verdicts out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gridstrat"
)

func main() {
	sites := flag.Int("sites", 24, "number of computing elements")
	seed := flag.Int64("seed", 1, "simulation seed")
	probes := flag.Int("probes", 1000, "probe jobs to collect")
	out := flag.String("out", "", "write the probe trace as CSV to this file")
	strategies := flag.Bool("strategies", false, "also run the three client strategies against the live grid")
	tasks := flag.Int("tasks", 100, "tasks per strategy with -strategies")
	regimeName := flag.String("regime", "", "run the replay conformance harness for one regime (stationary, heavytail, diurnal, switching, outage) or \"all\"")
	dataset := flag.String("dataset", "2006-IX", "paper dataset for -regime, or \"all\"")
	regimeSeed := flag.Uint64("regimeseed", 20090611, "master seed for -regime")
	verdictsOut := flag.String("verdicts", "", "write the -regime verdict table as JSON to this file")
	flag.Parse()

	if *regimeName != "" {
		if err := runRegimes(*regimeName, *dataset, *regimeSeed, *verdictsOut); err != nil {
			fail(err)
		}
		return
	}

	g, err := gridstrat.NewGrid(gridstrat.DefaultGrid(*sites, *seed))
	if err != nil {
		fail(err)
	}
	tr, err := gridstrat.RunProbes(g, gridstrat.DefaultProbeConfig(*probes), fmt.Sprintf("sim-%d", *seed))
	if err != nil {
		fail(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("campaign: %d probes over %.1f simulated hours\n", st.Probes, g.Engine.Now()/3600)
	fmt.Printf("latency: mean=%.0fs median=%.0fs std=%.0fs rho=%.3f\n",
		st.MeanBody, st.Median, st.StdBody, st.Rho)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := gridstrat.WriteTraceCSV(f, tr); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s\n", *out)
	}

	if !*strategies {
		return
	}

	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		fail(err)
	}
	planner, err := gridstrat.NewPlanner(m)
	if err != nil {
		fail(err)
	}
	ranked, err := planner.Rank(gridstrat.Single{}, gridstrat.Multiple{B: 4}, gridstrat.Delayed{})
	if err != nil {
		fail(err)
	}
	fmt.Println("\nmodel says (fastest first):")
	for _, r := range ranked {
		fmt.Printf("  %v EJ=%.0fs Δcost=%.2f\n", r.Strategy, r.Eval.EJ, r.Delta)
	}

	fmt.Println("\nreplaying against the live grid:")
	var specs []gridstrat.SimStrategySpec
	for _, r := range ranked {
		spec, err := gridstrat.SimSpec(r.Strategy)
		if err != nil {
			fail(err)
		}
		specs = append(specs, spec)
	}
	for _, spec := range specs {
		outc, err := gridstrat.RunStrategySim(g, spec, *tasks, 200, 1)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-8s mean J=%.0fs std=%.0fs submissions/task=%.2f N‖=%.2f (%d tasks, %d abandoned)\n",
			spec.Kind, outc.MeanJ, outc.StdJ, outc.MeanSubmissions, outc.MeanParallel,
			outc.Tasks, outc.TimedOutTasks)
	}
}

// runRegimes executes the replay conformance harness for the chosen
// regime × dataset cells and prints the verdict table. It exits
// non-zero on any silent SLO miss — a cell where the planner claimed
// feasibility the replay did not deliver.
func runRegimes(regimeName, dataset string, seed uint64, verdictsOut string) error {
	var kinds []gridstrat.RegimeKind
	if regimeName == "all" {
		kinds = gridstrat.RegimeKinds()
	} else {
		kind, err := gridstrat.ParseRegimeKind(regimeName)
		if err != nil {
			return err
		}
		kinds = []gridstrat.RegimeKind{kind}
	}
	var datasets []string
	if dataset == "all" {
		for _, ds := range gridstrat.PaperDatasets() {
			datasets = append(datasets, ds.Name)
		}
	} else {
		datasets = []string{dataset}
	}

	var table []gridstrat.RegimeVerdict
	misses := 0
	for _, kind := range kinds {
		for _, name := range datasets {
			spec, err := gridstrat.NewRegimeSpec(name, kind, seed)
			if err != nil {
				return err
			}
			verdicts, err := gridstrat.RunRegimeConformance(spec, gridstrat.RegimeConformanceConfig{})
			if err != nil {
				return err
			}
			for _, v := range verdicts {
				fmt.Println(v)
				if v.SilentMiss {
					misses++
				}
			}
			table = append(table, verdicts...)
		}
	}
	if verdictsOut != "" {
		buf, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(verdictsOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "verdict table written to %s (%d rows)\n", verdictsOut, len(table))
	}
	if misses > 0 {
		return fmt.Errorf("%d silent SLO miss(es) across %d cells", misses, len(table))
	}
	fmt.Printf("%d cells, zero silent SLO misses\n", len(table))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gridsim:", err)
	os.Exit(1)
}
