// Command gridsim runs the discrete-event grid simulator: it executes
// a probe measurement campaign against a synthetic EGEE-like
// infrastructure and optionally evaluates the three submission
// strategies against the live grid.
//
// Usage:
//
//	gridsim [-sites 24] [-seed 1] [-probes 1000] [-out trace.csv] [-strategies]
package main

import (
	"flag"
	"fmt"
	"os"

	"gridstrat"
	"gridstrat/internal/core"
	"gridstrat/internal/gridsim"
)

func main() {
	sites := flag.Int("sites", 24, "number of computing elements")
	seed := flag.Int64("seed", 1, "simulation seed")
	probes := flag.Int("probes", 1000, "probe jobs to collect")
	out := flag.String("out", "", "write the probe trace as CSV to this file")
	strategies := flag.Bool("strategies", false, "also run the three client strategies against the live grid")
	tasks := flag.Int("tasks", 100, "tasks per strategy with -strategies")
	flag.Parse()

	g, err := gridstrat.NewGrid(gridstrat.DefaultGrid(*sites, *seed))
	if err != nil {
		fail(err)
	}
	tr, err := gridstrat.RunProbes(g, gridstrat.DefaultProbeConfig(*probes), fmt.Sprintf("sim-%d", *seed))
	if err != nil {
		fail(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("campaign: %d probes over %.1f simulated hours\n", st.Probes, g.Engine.Now()/3600)
	fmt.Printf("latency: mean=%.0fs median=%.0fs std=%.0fs rho=%.3f\n",
		st.MeanBody, st.Median, st.StdBody, st.Rho)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := gridstrat.WriteTraceCSV(f, tr); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s\n", *out)
	}

	if !*strategies {
		return
	}

	m, err := gridstrat.ModelFromTrace(tr)
	if err != nil {
		fail(err)
	}
	planner, err := gridstrat.NewPlanner(m)
	if err != nil {
		fail(err)
	}
	ranked, err := planner.Rank(gridstrat.Single{}, gridstrat.Multiple{B: 4}, gridstrat.Delayed{})
	if err != nil {
		fail(err)
	}
	fmt.Println("\nmodel says (fastest first):")
	for _, r := range ranked {
		fmt.Printf("  %v EJ=%.0fs Δcost=%.2f\n", r.Strategy, r.Eval.EJ, r.Delta)
	}

	fmt.Println("\nreplaying against the live grid:")
	var specs []gridsim.StrategySpec
	for _, r := range ranked {
		params := r.Strategy.Params()
		switch r.Strategy.Name() {
		case gridstrat.StrategySingle:
			specs = append(specs, gridsim.StrategySpec{Kind: gridsim.StrategySingle, TInf: params.TInf})
		case gridstrat.StrategyMultiple:
			specs = append(specs, gridsim.StrategySpec{Kind: gridsim.StrategyMultiple, TInf: params.TInf, B: params.B})
		case gridstrat.StrategyDelayed:
			specs = append(specs, gridsim.StrategySpec{
				Kind: gridsim.StrategyDelayed, Delayed: core.DelayedParams{T0: params.T0, TInf: params.TInf}})
		}
	}
	for _, spec := range specs {
		outc, err := gridsim.RunStrategy(g, spec, *tasks, 200, 1)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-8s mean J=%.0fs std=%.0fs submissions/task=%.2f N‖=%.2f (%d tasks, %d abandoned)\n",
			spec.Kind, outc.MeanJ, outc.StdJ, outc.MeanSubmissions, outc.MeanParallel,
			outc.Tasks, outc.TimedOutTasks)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gridsim:", err)
	os.Exit(1)
}
