// Loadgen is gridstrat's wire-level soak driver: it pushes a mixed
// planning workload (single recommends, batch plans, observation
// ingests) at a gridstratd daemon or gridstratrouter front, open-loop
// (target QPS) or closed-loop (fixed workers), and reports
// p50/p95/p99 latency and throughput as one JSON document.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8372 -model 2006-IX [flags]
//
// Flags:
//
//	-addr string      target base URL (default "http://127.0.0.1:8372")
//	-model string     model ID every operation targets (required)
//	-create string    register the model from this paper dataset first
//	                  (default "", assume it exists)
//	-duration duration
//	                  measured interval (default 5s)
//	-warmup duration  unrecorded warmup traffic first (default 1s)
//	-workers int      concurrency degree (default 8)
//	-qps float        open-loop target arrival rate; 0 = closed loop
//	                  (default 0)
//	-batch int        items per batch operation (default 64)
//	-mix string       scenario weights "single=1,batch=0,ingest=0"
//	-class-mix string SLO-class weights "critical=0,standard=1,sheddable=0"
//	-ingest int       records per ingest operation (default 64)
//	-seed int         scenario draw seed (default 1)
//	-out string       write the JSON report here (default "-", stdout)
//
// A run exits non-zero if no traffic completed (see Report.Validate),
// so CI can use a short run as a serving smoke test.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gridstrat/internal/loadgen"
	"gridstrat/internal/server"
)

// parseWeights parses "a=0.5,b=0.3" against the allowed keys.
func parseWeights(spec string, into map[string]*float64) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("bad weight %q (want key=value)", part)
		}
		dst, known := into[strings.TrimSpace(k)]
		if !known {
			return fmt.Errorf("unknown weight key %q", k)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || f < 0 {
			return fmt.Errorf("bad weight value %q", v)
		}
		*dst = f
	}
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8372", "target base URL")
		model    = flag.String("model", "", "model ID every operation targets (required)")
		create   = flag.String("create", "", "register the model from this paper dataset first")
		duration = flag.Duration("duration", 5*time.Second, "measured interval")
		warmup   = flag.Duration("warmup", time.Second, "unrecorded warmup traffic first")
		workers  = flag.Int("workers", 8, "concurrency degree")
		qps      = flag.Float64("qps", 0, "open-loop target arrival rate (0 = closed loop)")
		batch    = flag.Int("batch", 64, "items per batch operation")
		mixSpec  = flag.String("mix", "single=1", `scenario weights, e.g. "single=0.8,batch=0.1,ingest=0.1"`)
		classes  = flag.String("class-mix", "standard=1", `SLO-class weights, e.g. "critical=0.1,standard=0.8,sheddable=0.1"`)
		ingest   = flag.Int("ingest", 64, "records per ingest operation")
		seed     = flag.Int64("seed", 1, "scenario draw seed")
		out      = flag.String("out", "-", `write the JSON report here ("-" = stdout)`)
	)
	flag.Parse()

	logger := log.New(os.Stderr, "loadgen: ", log.LstdFlags)
	if *model == "" {
		logger.Fatal("missing -model")
	}
	var mix loadgen.Mix
	if err := parseWeights(*mixSpec, map[string]*float64{
		"single": &mix.Single, "batch": &mix.Batch, "ingest": &mix.Ingest,
	}); err != nil {
		logger.Fatalf("-mix: %v", err)
	}
	var classMix loadgen.ClassMix
	if err := parseWeights(*classes, map[string]*float64{
		"critical": &classMix.Critical, "standard": &classMix.Standard, "sheddable": &classMix.Sheddable,
	}); err != nil {
		logger.Fatalf("-class-mix: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *create != "" {
		c := server.NewClient(*addr, nil).WithRetry(server.DefaultRetryPolicy)
		if _, err := c.CreateModel(ctx, server.CreateModelRequest{ID: *model, Dataset: *create}); err != nil {
			// 409 is benign: the model is simply already registered.
			var apiErr *server.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
				logger.Fatalf("create %q from dataset %q: %v", *model, *create, err)
			}
		}
	}

	report, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *addr,
		Model:       *model,
		Duration:    *duration,
		Warmup:      *warmup,
		Workers:     *workers,
		TargetQPS:   *qps,
		BatchSize:   *batch,
		Mix:         mix,
		ClassMix:    classMix,
		IngestBatch: *ingest,
		Seed:        *seed,
	})
	if err != nil {
		logger.Fatalf("run: %v", err)
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		logger.Fatalf("encode report: %v", err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		logger.Fatalf("write %s: %v", *out, err)
	}

	if err := report.Validate(); err != nil {
		logger.Fatalf("smoke check failed: %v", err)
	}
	logger.Printf("done: %d requests, %.0f req/s, p50 %.2fms p99 %.2fms (errors %d, shed %d)",
		report.Requests, report.ThroughputRPS, report.P50Ms, report.P99Ms, report.Errors, report.Shed)
}
