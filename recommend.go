package gridstrat

import (
	"fmt"
	"math/rand"

	"gridstrat/internal/core"
)

// Rand is the random source consumed by the Monte Carlo simulators.
type Rand = *rand.Rand

// NewSeededRand returns a deterministic random source derived from the
// full 64-bit seed via SplitMix64 (math/rand's own NewSource truncates
// seeds to 31 bits, which can hand two nearby seeds identical
// streams). Use it with WithRand — or the WithSeed shorthand — when a
// Monte Carlo result must be reproducible from a serialized seed.
func NewSeededRand(seed uint64) Rand { return core.NewSeededRand(seed) }

// StrategyName identifies a recommended strategy.
type StrategyName string

// Recommended strategy identifiers.
const (
	StrategySingle   StrategyName = "single"
	StrategyMultiple StrategyName = "multiple"
	StrategyDelayed  StrategyName = "delayed"
)

// Recommendation is the outcome of the strategy advisor: the strategy
// minimizing expected latency under a parallel-copy budget, with its
// tuned parameters, evaluation, and infrastructure cost.
type Recommendation struct {
	Strategy StrategyName
	TInf     float64       // timeout (single and multiple)
	B        int           // collection size (multiple)
	Delayed  DelayedParams // parameters (delayed)
	Eval     Evaluation
	Delta    float64 // Δcost relative to the single optimum
}

// String renders a one-line summary.
func (r Recommendation) String() string {
	switch r.Strategy {
	case StrategyMultiple:
		return fmt.Sprintf("multiple(b=%d, t∞=%.0fs): EJ=%.0fs σ=%.0fs N‖=%.2f Δcost=%.2f",
			r.B, r.TInf, r.Eval.EJ, r.Eval.Sigma, r.Eval.Parallel, r.Delta)
	case StrategyDelayed:
		return fmt.Sprintf("delayed(t0=%.0fs, t∞=%.0fs): EJ=%.0fs σ=%.0fs N‖=%.2f Δcost=%.2f",
			r.Delayed.T0, r.Delayed.TInf, r.Eval.EJ, r.Eval.Sigma, r.Eval.Parallel, r.Delta)
	default:
		return fmt.Sprintf("single(t∞=%.0fs): EJ=%.0fs σ=%.0fs N‖=1 Δcost=%.2f",
			r.TInf, r.Eval.EJ, r.Eval.Sigma, r.Delta)
	}
}

// ClassRecommendation is the outcome of SLO-class-aware planning: the
// configuration chosen for one class, the modeled probability that a
// task meets the class deadline under it, and whether that probability
// reaches the class target. When Feasible is false the planner is
// explicitly reporting that no configuration within the class's
// parallel-copy and Δcost budgets meets the SLO — the recommendation
// is then the closest miss (highest modeled hit probability), so the
// caller can degrade deliberately instead of discovering the miss in
// production.
type ClassRecommendation struct {
	Policy   ClassPolicy
	Rec      Recommendation
	PHit     float64 // modeled P(J <= Policy.Deadline) under Rec
	Feasible bool    // PHit >= Policy.Target
}

// String renders a one-line summary.
func (c ClassRecommendation) String() string {
	verdict := "meets SLO"
	if !c.Feasible {
		verdict = "INFEASIBLE"
	}
	return fmt.Sprintf("%s: %v — P(J<=%.0fs)=%.3f (target %.2f, %s)",
		c.Policy.Class, c.Rec, c.Policy.Deadline, c.PHit, c.Policy.Target, verdict)
}

// Recommend picks the strategy with the smallest expected total
// latency among those whose average parallel-copy count stays within
// maxParallel (≥ 1).
//
// Deprecated: build a Planner with NewPlanner(m,
// WithMaxParallel(maxParallel)) and call its Recommend method; the
// Planner memoizes model evaluations across queries.
func Recommend(m Model, maxParallel float64) (Recommendation, error) {
	p, err := NewPlanner(m, WithMaxParallel(maxParallel))
	if err != nil {
		return Recommendation{}, err
	}
	return p.Recommend()
}

// RecommendCheapest returns the configuration minimizing Δcost — the
// infrastructure-friendly choice of §7.
//
// Deprecated: build a Planner with NewPlanner(m) and call its
// RecommendCheapest method.
func RecommendCheapest(m Model) (Recommendation, error) {
	p, err := NewPlanner(m)
	if err != nil {
		return Recommendation{}, err
	}
	return p.RecommendCheapest()
}
