package gridstrat

import (
	"fmt"
	"math"
	"math/rand"

	"gridstrat/internal/core"
)

// Rand is the random source consumed by the Monte Carlo simulators.
type Rand = *rand.Rand

// StrategyName identifies a recommended strategy.
type StrategyName string

// Recommended strategy identifiers.
const (
	StrategySingle   StrategyName = "single"
	StrategyMultiple StrategyName = "multiple"
	StrategyDelayed  StrategyName = "delayed"
)

// Recommendation is the outcome of the strategy advisor: the strategy
// minimizing expected latency under a parallel-copy budget, with its
// tuned parameters, evaluation, and infrastructure cost.
type Recommendation struct {
	Strategy StrategyName
	TInf     float64       // timeout (single and multiple)
	B        int           // collection size (multiple)
	Delayed  DelayedParams // parameters (delayed)
	Eval     Evaluation
	Delta    float64 // Δcost relative to the single optimum
}

// String renders a one-line summary.
func (r Recommendation) String() string {
	switch r.Strategy {
	case StrategyMultiple:
		return fmt.Sprintf("multiple(b=%d, t∞=%.0fs): EJ=%.0fs σ=%.0fs N‖=%.2f Δcost=%.2f",
			r.B, r.TInf, r.Eval.EJ, r.Eval.Sigma, r.Eval.Parallel, r.Delta)
	case StrategyDelayed:
		return fmt.Sprintf("delayed(t0=%.0fs, t∞=%.0fs): EJ=%.0fs σ=%.0fs N‖=%.2f Δcost=%.2f",
			r.Delayed.T0, r.Delayed.TInf, r.Eval.EJ, r.Eval.Sigma, r.Eval.Parallel, r.Delta)
	default:
		return fmt.Sprintf("single(t∞=%.0fs): EJ=%.0fs σ=%.0fs N‖=1 Δcost=%.2f",
			r.TInf, r.Eval.EJ, r.Eval.Sigma, r.Delta)
	}
}

// Recommend picks the strategy with the smallest expected total
// latency among those whose average parallel-copy count stays within
// maxParallel (≥ 1). With maxParallel < 2 only single resubmission
// and budget-compatible delayed configurations compete; larger budgets
// unlock multiple submission with b up to ⌊maxParallel⌋.
func Recommend(m Model, maxParallel float64) (Recommendation, error) {
	if maxParallel < 1 || math.IsNaN(maxParallel) {
		return Recommendation{}, fmt.Errorf("gridstrat: parallel budget %v must be >= 1", maxParallel)
	}
	cc, err := core.NewCostContext(m)
	if err != nil {
		return Recommendation{}, err
	}

	best := Recommendation{
		Strategy: StrategySingle,
		TInf:     cc.RefTimeout,
		Eval:     Evaluation{EJ: cc.RefEJ, Sigma: core.SigmaSingle(m, cc.RefTimeout), Parallel: 1},
		Delta:    1,
	}

	// Multiple submission with the largest affordable collection.
	if b := int(maxParallel); b >= 2 {
		tInf, ev, delta := cc.DeltaMultiple(b)
		if ev.EJ < best.Eval.EJ {
			best = Recommendation{Strategy: StrategyMultiple, TInf: tInf, B: b, Eval: ev, Delta: delta}
		}
	}

	// Delayed: sweep ratios, keep budget-compatible configurations.
	for _, ratio := range []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0} {
		p, ev := core.OptimizeDelayedRatio(m, ratio)
		if math.IsInf(ev.EJ, 1) || ev.Parallel > maxParallel {
			continue
		}
		if ev.EJ < best.Eval.EJ {
			best = Recommendation{
				Strategy: StrategyDelayed, Delayed: p, Eval: ev,
				Delta: cc.Delta(ev.EJ, ev.Parallel),
			}
		}
	}
	return best, nil
}

// RecommendCheapest returns the configuration minimizing Δcost — the
// infrastructure-friendly choice of §7: usually a delayed strategy
// with Δcost < 1 when the latency law rewards it, otherwise plain
// single resubmission.
func RecommendCheapest(m Model) (Recommendation, error) {
	cc, err := core.NewCostContext(m)
	if err != nil {
		return Recommendation{}, err
	}
	best := Recommendation{
		Strategy: StrategySingle,
		TInf:     cc.RefTimeout,
		Eval:     Evaluation{EJ: cc.RefEJ, Sigma: core.SigmaSingle(m, cc.RefTimeout), Parallel: 1},
		Delta:    1,
	}
	res := cc.OptimizeDelayedCost()
	if res.Delta < best.Delta {
		best = Recommendation{Strategy: StrategyDelayed, Delayed: res.Params, Eval: res.Eval, Delta: res.Delta}
	}
	return best, nil
}
