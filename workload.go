package gridstrat

import (
	"gridstrat/internal/core"
	"gridstrat/internal/trace"
	"gridstrat/internal/workload"
)

// --- Application makespan modeling (the paper's future-work §8) ---

// Application is a latency-dominated bag of tasks run in waves.
type Application = workload.Application

// MakespanEstimate is the analytic makespan under one strategy.
type MakespanEstimate = workload.MakespanEstimate

// WorkloadStrategy wraps a strategy's total-latency law for makespan
// estimation.
//
// Deprecated: pass a Strategy (Single, Multiple, Delayed) to the
// Planner's makespan methods instead.
type WorkloadStrategy = workload.Strategy

// NewSingleStrategy builds the optimized single-resubmission law for
// makespan estimation.
//
// Deprecated: use Planner.EstimateMakespanUnder / Planner.CompareMakespan
// with Single{} — un-tuned strategies are optimized by the Planner
// automatically.
func NewSingleStrategy(m Model) WorkloadStrategy { return workload.SingleStrategy(m) }

// NewMultipleStrategy builds the optimized b-fold multiple-submission
// law for makespan estimation.
//
// Deprecated: use Planner.EstimateMakespanUnder / Planner.CompareMakespan
// with Multiple{B: b}.
func NewMultipleStrategy(m Model, b int) WorkloadStrategy { return workload.MultipleStrategy(m, b) }

// NewDelayedStrategy builds the optimized delayed-resubmission law for
// makespan estimation.
//
// Deprecated: use Planner.EstimateMakespanUnder / Planner.CompareMakespan
// with Delayed{}.
func NewDelayedStrategy(m Model) WorkloadStrategy { return workload.DelayedStrategy(m) }

// EstimateMakespan computes the expected wall-clock time of an
// application under a strategy (order-statistics wave model).
//
// Deprecated: use Planner.EstimateMakespan (recommended strategy) or
// Planner.EstimateMakespanUnder (explicit strategy).
func EstimateMakespan(a Application, s WorkloadStrategy) (MakespanEstimate, error) {
	return workload.EstimateMakespan(a, s)
}

// CompareMakespan evaluates several strategies on one application.
//
// Deprecated: use Planner.CompareMakespan with Strategy values.
func CompareMakespan(a Application, strategies ...WorkloadStrategy) ([]MakespanEstimate, error) {
	return workload.Compare(a, strategies...)
}

// SmallestMeetingDeadline returns the smallest collection size b whose
// analytic makespan meets the deadline (0 if none up to maxB).
//
// Deprecated: use Planner.SmallestCollection with WithDeadline.
func SmallestMeetingDeadline(m Model, a Application, deadline float64, maxB int) (int, MakespanEstimate, error) {
	return workload.SmallestMeetingDeadline(m, a, deadline, maxB)
}

// --- SLO-class planning ---

// SLOClass is a planning-side SLO class, mirroring the admission
// tiers the daemon enforces (critical | standard | sheddable).
type SLOClass = workload.Class

// Planning-side SLO classes in priority order.
const (
	ClassCritical  SLOClass = workload.ClassCritical
	ClassStandard  SLOClass = workload.ClassStandard
	ClassSheddable SLOClass = workload.ClassSheddable
)

// ParseSLOClass maps a class name ("critical", "standard",
// "sheddable") to its value.
func ParseSLOClass(s string) (SLOClass, error) { return workload.ParseClass(s) }

// SLOClasses returns the three classes in priority order.
func SLOClasses() []SLOClass { return workload.Classes() }

// ClassPolicy is one class's planning SLO: deadline, required hit
// probability, parallel-copy budget, Δcost ceiling.
type ClassPolicy = workload.ClassPolicy

// ClassDemand is one class's application demand under contended
// capacity.
type ClassDemand = workload.ClassDemand

// ClassAllocation is the contended planner's per-class verdict.
type ClassAllocation = workload.ClassAllocation

// DefaultClassPolicies derives the three class policies from the
// deadline the critical class must meet.
func DefaultClassPolicies(deadline float64) []ClassPolicy { return workload.DefaultPolicies(deadline) }

// SmallestMeetingDeadlineByClass allocates collection sizes to
// per-class demands in priority order under a shared parallel-copy
// capacity — the class-aware SmallestMeetingDeadline. Prefer
// Planner.PlanClasses, which shares the Planner's memoized model.
func SmallestMeetingDeadlineByClass(m Model, demands []ClassDemand, capacity float64, maxB int) ([]ClassAllocation, float64, error) {
	return workload.SmallestMeetingDeadlineContended(m, demands, capacity, maxB)
}

// --- Strategy CDFs and order statistics ---

// SingleCDF returns the distribution function of the total latency J
// under single resubmission at timeout tInf.
func SingleCDF(m Model, tInf float64) func(float64) float64 { return core.SingleCDF(m, tInf) }

// MultipleCDF returns the distribution function of the total latency J
// under b-fold multiple submission at timeout tInf.
func MultipleCDF(m Model, b int, tInf float64) func(float64) float64 {
	return core.MultipleCDF(m, b, tInf)
}

// DelayedCDF returns the distribution function of the total latency J
// under delayed resubmission at fixed parameters.
func DelayedCDF(m Model, p DelayedParams) func(float64) float64 { return core.DelayedCDF(m, p) }

// ExpectedMax returns E[max of n i.i.d. draws] for a non-negative law
// given by its CDF (hint scales the integration grid). A nil CDF or
// n < 1 yields NaN.
func ExpectedMax(cdf func(float64) float64, n int, hint float64) float64 {
	return core.ExpectedMax(cdf, n, hint)
}

// --- Estimation uncertainty ---

// BootstrapCI is a percentile bootstrap confidence interval.
type BootstrapCI = core.BootstrapCI

// BootstrapSingleEJ returns a CI for EJ under single resubmission at a
// fixed timeout.
func BootstrapSingleEJ(m *EmpiricalModel, tInf float64, resamples int, level float64, rng Rand) (BootstrapCI, error) {
	return core.BootstrapSingleEJ(m, tInf, resamples, level, rng)
}

// BootstrapDelayedEJ returns a CI for EJ under the delayed strategy at
// fixed parameters.
func BootstrapDelayedEJ(m *EmpiricalModel, p DelayedParams, resamples int, level float64, rng Rand) (BootstrapCI, error) {
	return core.BootstrapDelayedEJ(m, p, resamples, level, rng)
}

// BootstrapStatistic returns a CI for any statistic of the latency
// model.
func BootstrapStatistic(m *EmpiricalModel, stat func(Model) float64, resamples int, level float64, rng Rand) (BootstrapCI, error) {
	return core.BootstrapStatistic(m, stat, resamples, level, rng)
}

// --- Non-stationarity analysis ---

// TraceStats is the per-trace (or per-window) summary.
type TraceStats = trace.Stats

// StationarityReport summarizes windowed latency drift and trend.
type StationarityReport = trace.StationarityReport

// WindowStats splits a trace into submit-time windows and summarizes
// each.
func WindowStats(t *Trace, window float64) ([]TraceStats, error) {
	return trace.WindowStats(t, window)
}

// AnalyzeStationarity computes the drift/trend report of a trace.
func AnalyzeStationarity(t *Trace, window float64) (StationarityReport, error) {
	return trace.AnalyzeStationarity(t, window)
}
